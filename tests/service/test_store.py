"""ResultStore: persistence, corruption tolerance, and bounded size."""

import json

import numpy as np
import pytest

from repro.execution import execute
from repro.qudits import qubits
from repro.execution.results import RunResult
from repro.service import ResultStore
from repro.service.store import STORE_SCHEMA


@pytest.fixture()
def result():
    return execute("qutrit_tree", num_controls=3, backend="statevector")


KEY = ("fingerprint", "statevector", None, 3)
OTHER = ("fingerprint", "statevector", None, 4)


class TestRoundTrip:
    def test_put_get(self, tmp_path, result):
        store = ResultStore(tmp_path)
        assert store.put(KEY, result)
        back = store.get(KEY)
        np.testing.assert_allclose(back.state.tensor, result.state.tensor)
        assert store.stats.writes == 1
        assert store.stats.hits == 1

    def test_survives_new_store_instance(self, tmp_path, result):
        ResultStore(tmp_path).put(KEY, result)
        reopened = ResultStore(tmp_path)
        assert reopened.get(KEY) is not None
        assert len(reopened) == 1

    def test_miss_on_unknown_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY) is None
        assert store.stats.misses == 1

    def test_clear(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(KEY, result)
        store.clear()
        assert len(store) == 0
        assert store.get(KEY) is None


class TestCorruptionTolerance:
    def test_truncated_entry_is_dropped_miss(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(KEY, result)
        store.path_for(KEY).write_text('{"schema": "repro-resu')
        assert store.get(KEY) is None
        assert store.stats.corrupt_dropped == 1
        assert not store.path_for(KEY).exists()

    def test_wrong_schema_is_dropped(self, tmp_path, result):
        store = ResultStore(tmp_path)
        store.put(KEY, result)
        envelope = json.loads(store.path_for(KEY).read_text())
        envelope["schema"] = "something-else/v1"
        store.path_for(KEY).write_text(json.dumps(envelope))
        assert store.get(KEY) is None
        assert store.stats.corrupt_dropped == 1

    def test_key_mismatch_never_serves_wrong_result(self, tmp_path, result):
        """A file moved between names (or a digest collision) must miss."""
        store = ResultStore(tmp_path)
        store.put(KEY, result)
        store.path_for(KEY).rename(store.path_for(OTHER))
        assert store.get(OTHER) is None
        assert store.stats.corrupt_dropped == 1

    def test_unserializable_result_refused(self, tmp_path):
        store = ResultStore(tmp_path)
        bad = RunResult(
            backend="classical", wires=tuple(qubits(1)), values=(0,),
            metadata={"payload": object()},
        )
        assert store.put(KEY, bad) is False
        assert store.stats.write_failures == 1
        assert len(store) == 0


class TestBoundedSize:
    def test_entry_cap_evicts_oldest(self, tmp_path, result):
        store = ResultStore(tmp_path, max_entries=2)
        for index in range(4):
            store.put(("key", index), result)
        assert len(store) == 2
        assert store.stats.evictions == 2
        # The newest entries survive.
        assert store.get(("key", 3)) is not None

    def test_byte_cap_evicts(self, tmp_path, result):
        entry_bytes = None
        probe = ResultStore(tmp_path / "probe")
        probe.put(KEY, result)
        entry_bytes = probe.path_for(KEY).stat().st_size
        store = ResultStore(tmp_path / "real",
                            max_bytes=int(entry_bytes * 2.5))
        for index in range(4):
            store.put(("key", index), result)
        assert store.total_bytes() <= entry_bytes * 2.5
        assert store.stats.evictions >= 1

    def test_invalid_caps_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_entries=0)
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_bytes=0)
