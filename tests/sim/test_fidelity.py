"""Tests for mean-fidelity estimation (the Figure 11 harness)."""

import numpy as np

from repro.circuits.circuit import Circuit
from repro.gates.qubit import CNOT, H
from repro.noise.model import NoiseModel
from repro.qudits import qubits
from repro.sim.fidelity import estimate_circuit_fidelity

NOISELESS = NoiseModel("noiseless", 0.0, 0.0, 1e-7, 3e-7, t1=None)
NOISY = NoiseModel("noisy", 5e-3, 2e-3, 1e-7, 3e-7, t1=None)


def _ghz_circuit(width=3):
    wires = qubits(width)
    ops = [H.on(wires[0])]
    ops.extend(CNOT.on(wires[i], wires[i + 1]) for i in range(width - 1))
    return Circuit(ops)


class TestEstimate:
    def test_noiseless_estimate_is_unity(self):
        estimate = estimate_circuit_fidelity(
            _ghz_circuit(), NOISELESS, trials=5, seed=1
        )
        assert np.isclose(estimate.mean_fidelity, 1.0)
        assert estimate.std_error < 1e-12
        assert estimate.trials == 5

    def test_noisy_estimate_below_unity(self):
        estimate = estimate_circuit_fidelity(
            _ghz_circuit(), NOISY, trials=60, seed=2
        )
        assert 0.5 < estimate.mean_fidelity < 0.999

    def test_seed_reproducibility(self):
        a = estimate_circuit_fidelity(_ghz_circuit(), NOISY, 20, seed=7)
        b = estimate_circuit_fidelity(_ghz_circuit(), NOISY, 20, seed=7)
        assert a.mean_fidelity == b.mean_fidelity

    def test_different_seeds_differ(self):
        a = estimate_circuit_fidelity(_ghz_circuit(), NOISY, 20, seed=7)
        b = estimate_circuit_fidelity(_ghz_circuit(), NOISY, 20, seed=8)
        assert a.mean_fidelity != b.mean_fidelity

    def test_two_sigma_property(self):
        estimate = estimate_circuit_fidelity(
            _ghz_circuit(), NOISY, trials=30, seed=3
        )
        assert np.isclose(estimate.two_sigma, 2 * estimate.std_error)

    def test_error_rates_tracked(self):
        estimate = estimate_circuit_fidelity(
            _ghz_circuit(), NOISY, trials=50, seed=4
        )
        assert estimate.mean_gate_errors > 0

    def test_str_is_informative(self):
        estimate = estimate_circuit_fidelity(
            _ghz_circuit(), NOISELESS, trials=3, seed=5,
            circuit_name="GHZ",
        )
        text = str(estimate)
        assert "GHZ" in text and "noiseless" in text
