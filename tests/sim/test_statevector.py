"""Tests for the noise-free state-vector simulator."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qubit import CNOT, H
from repro.gates.qutrit import QUTRIT_H, X_PLUS_1
from repro.qudits import Qudit, qubits, qutrits
from repro.sim.state import StateVector


class TestRun:
    def test_bell_state(self, state_sim):
        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        state = state_sim.run(circuit)
        assert np.isclose(state.probability_of((0, 0)), 0.5)
        assert np.isclose(state.probability_of((1, 1)), 0.5)
        assert np.isclose(state.probability_of((0, 1)), 0.0)

    def test_run_from_custom_initial_state(self, state_sim):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        initial = StateVector.computational_basis([a, b], (1, 1))
        state = state_sim.run(circuit, initial)
        assert state.probability_of((1, 0)) == 1.0

    def test_initial_state_is_not_mutated(self, state_sim):
        a = Qudit(0, 2)
        circuit = Circuit([H.on(a)])
        initial = StateVector.zero([a])
        state_sim.run(circuit, initial)
        assert initial.probability_of((0,)) == 1.0

    def test_run_basis_shortcut(self, state_sim):
        a, b = qutrits(2)
        circuit = Circuit([X_PLUS_1.on(b)])
        state = state_sim.run_basis(circuit, [a, b], (1, 2))
        assert state.probability_of((1, 0)) == 1.0

    def test_wires_superset_of_circuit(self, state_sim):
        a, b, c = qubits(3)
        circuit = Circuit([CNOT.on(a, b)])
        state = state_sim.run(circuit, wires=[a, b, c])
        assert state.probability_of((0, 0, 0)) == 1.0

    def test_missing_wires_rejected(self, state_sim):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        initial = StateVector.zero([a])
        with pytest.raises(ValueError):
            state_sim.run(circuit, initial)

    def test_qutrit_fourier_uniform(self, state_sim):
        a = qutrits(1)[0]
        circuit = Circuit([QUTRIT_H.on(a)])
        state = state_sim.run(circuit)
        for level in range(3):
            assert np.isclose(state.probability_of((level,)), 1 / 3)

    def test_empty_circuit_is_identity(self, state_sim):
        wires = qutrits(2)
        initial = StateVector.computational_basis(wires, (2, 1))
        state = state_sim.run(Circuit([]), initial)
        assert state.probability_of((2, 1)) == 1.0
        state = state_sim.run(Circuit([]), wires=wires)
        assert state.probability_of((0, 0)) == 1.0

    def test_single_wire_register(self, state_sim):
        a = qutrits(1)[0]
        state = state_sim.run(Circuit([X_PLUS_1.on(a)]))
        assert state.wires == [a]
        assert state.probability_of((1,)) == 1.0

    def test_initial_state_may_cover_extra_wires(self, state_sim):
        a, b, c = qubits(3)
        circuit = Circuit([CNOT.on(a, b)])
        initial = StateVector.computational_basis([a, b, c], (1, 0, 1))
        state = state_sim.run(circuit, initial)
        assert state.probability_of((1, 1, 1)) == 1.0


class TestEngineKnobs:
    """The v2 constructor knobs: dtype and the permutation fast path."""

    def test_default_knobs(self):
        from repro.sim.statevector import StateVectorSimulator

        sim = StateVectorSimulator()
        assert sim.dtype is None
        assert sim.permutation_fast_path

    def test_dtype_forces_complex64(self):
        from repro.sim.statevector import StateVectorSimulator

        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        sim = StateVectorSimulator(dtype=np.complex64)
        assert sim.dtype == np.complex64
        state = sim.run(circuit)
        assert state.dtype == np.complex64
        # An explicit complex128 initial state is converted, not
        # mutated.
        initial = StateVector.zero([a, b])
        state = sim.run(circuit, initial)
        assert state.dtype == np.complex64
        assert initial.dtype == np.complex128

    def test_default_dtype_follows_initial_state(self, state_sim):
        a = qubits(1)[0]
        initial = StateVector.zero([a]).astype(np.complex64)
        state = state_sim.run(Circuit([H.on(a)]), initial)
        assert state.dtype == np.complex64

    def test_dense_oracle_matches_fast_path(self, rng):
        from repro.sim.statevector import StateVectorSimulator
        from repro.toffoli.registry import build_toffoli

        result = build_toffoli("qutrit_tree", 4, decompose=False)
        wires = result.circuit.all_qudits()
        initial = StateVector.random(wires, rng)
        dense_sim = StateVectorSimulator(permutation_fast_path=False)
        assert not dense_sim.permutation_fast_path
        fast = StateVectorSimulator().run(result.circuit, initial)
        dense = dense_sim.run(result.circuit, initial)
        # Permutation gathers move amplitudes without arithmetic, so
        # parity with the dense contraction is exact.
        assert np.array_equal(fast.vector, dense.vector)


class TestKernelCacheRouting:
    """apply_operation lowers each canonical gate once, process-wide:
    permutation gates land in the permutation-table cache (the v2 fast
    path), everything else in the dense gate-kernel cache."""

    def test_repeated_gate_lowers_once(self, state_sim):
        from repro.sim.kernels import clear_kernel_caches, kernel_cache_stats

        clear_kernel_caches()
        a, b, c = qubits(3)
        circuit = Circuit(
            [H.on(a), CNOT.on(a, b), H.on(b), CNOT.on(b, c), H.on(c)]
        )
        state_sim.run(circuit)
        # Five operations, two distinct canonical gates.  CNOT is a
        # permutation, so it lowers to a table and never enters the
        # dense cache; H gets the dense kernel plus a cached negative
        # permutation verdict.
        stats = kernel_cache_stats()
        assert stats["gate_kernels"] == 1
        assert stats["permutation_kernels"] == 2

    def test_unitary_not_recomputed_on_cache_hit(self, state_sim):
        from repro.gates.matrix import MatrixGate
        from repro.sim.kernels import clear_kernel_caches

        clear_kernel_caches()

        calls = 0

        class CountingGate(MatrixGate):
            def unitary(self):
                nonlocal calls
                calls += 1
                return super().unitary()

        gate = CountingGate(H.unitary(), (2,), name="counting-h")
        a = qubits(1)[0]
        circuit = Circuit([gate.on(a), gate.on(a), gate.on(a)])
        state = state_sim.run(circuit)
        # Once for the (cached, negative) permutation check, once to
        # build the dense kernel — O(1) per canonical spec, never per
        # application.
        assert calls == 2
        # Three H's = one H worth of amplitudes.
        assert np.isclose(state.probability_of((0,)), 0.5)

    def test_cached_apply_matches_apply_matrix(self, state_sim, rng):
        a, b = qutrits(2)
        reference = StateVector.random([a, b], rng)
        via_kernel = reference.copy()
        via_matrix = reference.copy()
        op = X_PLUS_1.on(b)
        via_kernel.apply_operation(op)
        via_matrix.apply_matrix(op.unitary(), op.qudits)
        assert np.allclose(via_kernel.tensor, via_matrix.tensor)
