"""Batched classical permutation engine: parity, round-trips, batching."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import NotClassicalError, SchedulingError
from repro.gates.base import Gate
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.qudits import qubits, qutrits
from repro.sim.classical_batch import (
    BatchedClassicalSimulator,
    resolve_classical_batch_size,
)
from repro.toffoli.registry import build_toffoli

#: Constructions whose builders can emit undecomposed permutation
#: circuits (the classical engines' whole domain).
PERMUTATION_CONSTRUCTIONS = [
    "qutrit_tree",
    "qubit_one_dirty",
    "he_tree",
]


@pytest.fixture
def batched() -> BatchedClassicalSimulator:
    return BatchedClassicalSimulator()


def _looped_truth_table(circuit, wires, input_levels=None):
    """Reference truth table through the looped ``classical_map`` walk."""
    from itertools import product

    choices = []
    for wire in wires:
        if input_levels is not None and wire in input_levels:
            choices.append(tuple(input_levels[wire]))
        else:
            choices.append(tuple(wire.levels))
    table = {}
    for values in product(*choices):
        out = circuit.classical_map(dict(zip(wires, values)))
        table[values] = tuple(out[w] for w in wires)
    return table


class TestRunArray:
    def test_matches_looped_on_simple_chain(self, batched):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])
        inputs = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        outputs = batched.run_array(circuit, [a, b], inputs)
        for row_in, row_out in zip(inputs, outputs):
            expect = circuit.classical_map(dict(zip([a, b], row_in)))
            assert tuple(row_out) == (expect[a], expect[b])

    def test_qutrit_elevation_chain(self, batched):
        a, b = qutrits(2)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b),
                ControlledGate(X01, (3,), (2,)).on(b, a),
            ]
        )
        out = batched.run_array(circuit, [a, b], np.array([[1, 1]]))
        assert out.tolist() == [[0, 2]]

    def test_results_independent_of_batch_size(self, batched):
        result = build_toffoli("qutrit_tree", 4, decompose=False)
        wires = result.all_wires
        inputs = batched.input_space(wires, {w: (0, 1) for w in wires})
        full = batched.run_array(result.circuit, wires, inputs)
        for chunk in (1, 3, 7, len(inputs)):
            chunked = batched.run_array(
                result.circuit, wires, inputs, batch_size=chunk
            )
            assert np.array_equal(full, chunked)

    def test_non_classical_gate_raises(self, batched):
        a = qubits(1)[0]
        with pytest.raises(NotClassicalError):
            batched.run_array(Circuit([H.on(a)]), [a], np.array([[0]]))

    def test_missing_wire_raises_scheduling_error(self, batched):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        with pytest.raises(SchedulingError):
            batched.run_array(circuit, [a], np.array([[0]]))

    def test_out_of_range_input_rejected(self, batched):
        a = qubits(1)[0]
        circuit = Circuit([X.on(a)])
        with pytest.raises(ValueError, match="out of range"):
            batched.run_array(circuit, [a], np.array([[2]]))

    def test_bad_shape_rejected(self, batched):
        a = qubits(1)[0]
        with pytest.raises(ValueError, match="shape"):
            batched.run_array(Circuit([X.on(a)]), [a], np.array([0, 1]))


class TestRunValuesScalarPath:
    """run_values takes a scalar walk over the cached lowering; it must
    agree with the array path on results and on every error contract."""

    def test_matches_run_array_rows(self, batched):
        result = build_toffoli("qutrit_tree", 4, decompose=False)
        wires = result.all_wires
        inputs = batched.input_space(wires, {w: (0, 1) for w in wires})
        outputs = batched.run_array(result.circuit, wires, inputs)
        for row_in, row_out in zip(inputs, outputs):
            assert batched.run_values(
                result.circuit, wires, row_in.tolist()
            ) == tuple(row_out)

    def test_repeated_calls_hit_the_lowering_cache(self, batched):
        from repro.sim.classical_batch import _lowered_operations

        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])
        _lowered_operations.cache_clear()
        batched.run_values(circuit, [a, b], (1, 0))
        batched.run_values(circuit, [a, b], (0, 1))
        info = _lowered_operations.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_scalar_path_error_contracts(self, batched):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        with pytest.raises(ValueError, match="out of range"):
            batched.run_values(circuit, [a, b], (2, 0))
        with pytest.raises(ValueError, match="shape"):
            batched.run_values(circuit, [a, b], (0,))
        with pytest.raises(SchedulingError):
            batched.run_values(circuit, [a], (0,))
        with pytest.raises(NotClassicalError):
            batched.run_values(Circuit([H.on(a)]), [a], (0,))


class TestTruthTableParity:
    @pytest.mark.parametrize("name", PERMUTATION_CONSTRUCTIONS)
    def test_matches_looped_for_constructions(self, batched, name):
        result = build_toffoli(name, 3, decompose=False)
        wires = result.all_wires
        levels = {w: (0, 1) for w in wires}
        assert batched.truth_table(
            result.circuit, wires, levels
        ) == _looped_truth_table(result.circuit, wires, levels)

    def test_wang_chain_parity(self, batched):
        # wang_chain emits permutation gates directly (no decompose knob).
        result = build_toffoli("wang_chain", 3)
        wires = result.all_wires
        levels = {w: (0, 1) for w in wires}
        assert batched.truth_table(
            result.circuit, wires, levels
        ) == _looped_truth_table(result.circuit, wires, levels)

    def test_full_levels_by_default(self, batched):
        a = qutrits(1)[0]
        circuit = Circuit([X_PLUS_1.on(a)])
        table = batched.truth_table(circuit, [a])
        assert table == {(0,): (1,), (1,): (2,), (2,): (0,)}

    def test_dirty_ancilla_patterns_covered(self, batched):
        result = build_toffoli("qubit_one_dirty", 3, decompose=False)
        wires = result.all_wires
        table = batched.truth_table(
            result.circuit, wires, {w: (0, 1) for w in wires}
        )
        n = result.spec.num_controls
        borrow_col = wires.index(result.borrowed_ancilla[0])
        for values, out in table.items():
            # Borrowed wire restored for every dirty pattern; target
            # flipped exactly when all controls are active.
            assert out[borrow_col] == values[borrow_col]
            active = all(v == 1 for v in values[:n])
            assert out[n] == (values[n] ^ 1 if active else values[n])


class TestPermutationVector:
    def test_round_trips_against_truth_table(self, batched):
        result = build_toffoli("qutrit_tree", 3, decompose=False)
        wires = result.all_wires
        dims = [w.dimension for w in wires]
        vector = batched.permutation_vector(result.circuit, wires)
        table = batched.truth_table(result.circuit, wires)
        weights = np.ones(len(dims), dtype=np.int64)
        for k in range(len(dims) - 2, -1, -1):
            weights[k] = weights[k + 1] * dims[k + 1]
        assert len(vector) == int(np.prod(dims))
        for values, out in table.items():
            index = int(np.asarray(values) @ weights)
            assert vector[index] == int(np.asarray(out) @ weights)

    def test_is_a_permutation_of_the_joint_space(self, batched):
        result = build_toffoli("wang_chain", 4)
        vector = batched.permutation_vector(result.circuit)
        assert sorted(vector.tolist()) == list(range(len(vector)))

    def test_composes_like_circuits(self, batched):
        a, b = qubits(2)
        first = Circuit([X.on(a)])
        second = Circuit([CNOT.on(a, b)])
        v1 = batched.permutation_vector(first, [a, b])
        v2 = batched.permutation_vector(second, [a, b])
        joint = batched.permutation_vector(first + second, [a, b])
        assert np.array_equal(joint, v2[v1])

    def test_empty_circuit_identity(self, batched):
        vector = batched.permutation_vector(Circuit())
        assert vector.tolist() == [0]


class _ZeroFixingNonClassicalGate(Gate):
    """Regression gate: acts classically on |0> but on nothing else.

    ``H`` fixes no basis state, so tack the classical-looking behaviour
    on explicitly: ``classical_action`` answers for the all-zeros input
    (the old probe) and only the whole-domain lowering exposes that the
    unitary is not a permutation.
    """

    @property
    def dims(self):
        return (2,)

    @property
    def name(self):
        return "zero-fixing-H"

    def unitary(self):
        return H.unitary()

    def classical_action(self, values):
        if tuple(values) == (0,):
            return (0,)
        raise NotClassicalError("only classical at zero")


class TestIsClassicalCircuit:
    def test_accepts_permutation_circuit(self, batched):
        a, b = qubits(2)
        assert batched.is_classical_circuit(Circuit([CNOT.on(a, b)]))

    def test_rejects_h(self, batched):
        a = qubits(1)[0]
        assert not batched.is_classical_circuit(Circuit([H.on(a)]))

    def test_rejects_gate_classical_only_at_zero(self, batched):
        # The pre-PR-4 check probed gates with the all-zeros input via
        # classical_action; this gate answers that probe but is not a
        # permutation.  Classicality must come from the table lowering.
        a = qubits(1)[0]
        gate = _ZeroFixingNonClassicalGate()
        assert gate.classical_action((0,)) == (0,)  # fools the old probe
        assert not batched.is_classical_circuit(Circuit([gate.on(a)]))


class TestResolveBatchSize:
    def test_auto_is_single_pass_up_to_cap(self):
        assert resolve_classical_batch_size(None, 1000) == 1000
        assert resolve_classical_batch_size(None, 1 << 20) == 1 << 16

    def test_explicit_clamped(self):
        assert resolve_classical_batch_size(4, 10) == 4
        assert resolve_classical_batch_size(400, 10) == 10
        assert resolve_classical_batch_size(0, 10) == 1

    def test_single_row(self):
        assert resolve_classical_batch_size(None, 1) == 1
