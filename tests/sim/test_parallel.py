"""Tests for the multi-process fidelity harness."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qubit import CNOT, H
from repro.noise.model import NoiseModel
from repro.qudits import qubits
from repro.sim.fidelity import FidelityEstimate
from repro.sim.parallel import (
    estimate_circuit_fidelity_parallel,
    merge_estimates,
)

NOISY = NoiseModel("noisy", 2e-3, 1e-3, 1e-7, 3e-7, t1=None)


def _circuit():
    a, b, c = qubits(3)
    return Circuit([H.on(a), CNOT.on(a, b), CNOT.on(b, c)])


def _estimate(name, trials, mean, stderr, gate_errors=0.0):
    return FidelityEstimate(
        circuit_name=name,
        noise_model_name="m",
        trials=trials,
        mean_fidelity=mean,
        std_error=stderr,
        mean_gate_errors=gate_errors,
        mean_idle_jumps=0.0,
    )


class TestMerge:
    def test_weighted_mean(self):
        merged = merge_estimates(
            [_estimate("c", 10, 0.9, 0.0), _estimate("c", 30, 0.5, 0.0)]
        )
        assert np.isclose(merged.mean_fidelity, 0.6)
        assert merged.trials == 40

    def test_single_shard_passthrough(self):
        single = _estimate("c", 10, 0.8, 0.01, gate_errors=1.5)
        merged = merge_estimates([single])
        assert np.isclose(merged.mean_fidelity, 0.8)
        assert np.isclose(merged.mean_gate_errors, 1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_estimates([])

    def test_pooled_variance_nonnegative(self):
        merged = merge_estimates(
            [
                _estimate("c", 20, 0.7, 0.02),
                _estimate("c", 20, 0.75, 0.03),
            ]
        )
        assert merged.std_error >= 0


class TestParallelEstimate:
    def test_small_jobs_fall_back_to_serial(self):
        estimate = estimate_circuit_fidelity_parallel(
            _circuit(), NOISY, trials=4, seed=1, workers=4
        )
        assert estimate.trials == 4

    def test_parallel_run_matches_statistics(self):
        # Parallel and serial estimates come from different streams but
        # must agree within combined error bars on an easy circuit.
        serial = estimate_circuit_fidelity_parallel(
            _circuit(), NOISY, trials=120, seed=5, workers=1
        )
        parallel = estimate_circuit_fidelity_parallel(
            _circuit(), NOISY, trials=120, seed=5, workers=2
        )
        assert parallel.trials == 120
        tolerance = 4 * (serial.std_error + parallel.std_error) + 1e-3
        assert abs(
            parallel.mean_fidelity - serial.mean_fidelity
        ) < max(tolerance, 0.05)

    def test_deterministic_given_seed_and_workers(self):
        a = estimate_circuit_fidelity_parallel(
            _circuit(), NOISY, trials=40, seed=9, workers=2
        )
        b = estimate_circuit_fidelity_parallel(
            _circuit(), NOISY, trials=40, seed=9, workers=2
        )
        assert a.mean_fidelity == b.mean_fidelity
