"""Tests for the density-matrix reference simulator.

The headline test: averaged quantum trajectories converge to the exact
density-matrix fidelity — the claim (Sec. 6.2) that justifies the paper's
entire simulation methodology.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.model import NoiseModel
from repro.qudits import qubits, qutrits
from repro.sim.density import DensityMatrix, DensityMatrixSimulator
from repro.sim.state import StateVector
from repro.sim.trajectory import TrajectorySimulator

NOISELESS = NoiseModel("clean", 0.0, 0.0, 1e-7, 3e-7, t1=None)
DEPOL = NoiseModel("depol", 2e-3, 1e-3, 1e-7, 3e-7, t1=None)
DAMPING = NoiseModel("damp", 0.0, 0.0, 1e-6, 3e-6, t1=2e-5)
MIXED = NoiseModel("mixed", 1e-3, 5e-4, 1e-6, 3e-6, t1=1e-4)


def _bell():
    a, b = qubits(2)
    return Circuit([H.on(a), CNOT.on(a, b)]), [a, b]


class TestDensityMatrix:
    def test_pure_state_roundtrip(self):
        wires = qubits(2)
        state = StateVector.computational_basis(wires, (1, 0))
        rho = DensityMatrix.from_state(state)
        assert np.isclose(rho.trace(), 1.0)
        assert np.isclose(rho.purity(), 1.0)
        assert np.isclose(rho.fidelity_with_pure(state), 1.0)

    def test_apply_unitary_matches_statevector(self):
        circuit, wires = _bell()
        state = StateVector.zero(wires)
        rho = DensityMatrix.from_state(state)
        for op in circuit.all_operations():
            rho.apply_unitary(op.unitary(), list(op.qudits))
            state.apply_operation(op)
        assert np.isclose(rho.fidelity_with_pure(state), 1.0)
        assert np.isclose(rho.purity(), 1.0)

    def test_apply_unitary_middle_wire(self):
        wires = qutrits(3)
        state = StateVector.computational_basis(wires, (0, 1, 0))
        rho = DensityMatrix.from_state(state)
        rho.apply_unitary(X_PLUS_1.unitary(), [wires[1]])
        expected = StateVector.computational_basis(wires, (0, 2, 0))
        assert np.isclose(rho.fidelity_with_pure(expected), 1.0)

    def test_two_wire_unitary_with_gap(self):
        wires = qubits(3)
        state = StateVector.computational_basis(wires, (1, 0, 0))
        rho = DensityMatrix.from_state(state)
        rho.apply_unitary(CNOT.unitary(), [wires[0], wires[2]])
        expected = StateVector.computational_basis(wires, (1, 0, 1))
        assert np.isclose(rho.fidelity_with_pure(expected), 1.0)

    def test_kraus_reduces_purity(self):
        wires = qubits(1)
        state = StateVector.zero(wires)
        state.apply_operation(H.on(wires[0]))
        rho = DensityMatrix.from_state(state)
        # Full dephasing in the computational basis.
        k0 = np.diag([1.0, 0.0]).astype(complex)
        k1 = np.diag([0.0, 1.0]).astype(complex)
        rho.apply_kraus([k0, k1], [wires[0]])
        assert np.isclose(rho.trace(), 1.0)
        assert rho.purity() < 0.75

    def test_size_guard(self):
        wires = qubits(8)
        sim = DensityMatrixSimulator(NOISELESS)
        with pytest.raises(SimulationError):
            sim.run(Circuit([X.on(wires[0])]), StateVector.zero(wires))


class TestExactEvolution:
    def test_noiseless_run_stays_pure(self):
        circuit, wires = _bell()
        sim = DensityMatrixSimulator(NOISELESS)
        rho = sim.run(circuit, StateVector.zero(wires))
        assert np.isclose(rho.purity(), 1.0)
        assert np.isclose(sim.mean_fidelity(circuit, StateVector.zero(wires)), 1.0)

    def test_depolarizing_fidelity_closed_form(self):
        # One noisy two-qubit gate: F = (1-15p2) + error-overlap terms;
        # for a basis input and CNOT, X-type errors move the state to
        # orthogonal basis states and Z-type errors leave it invariant.
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        sim = DensityMatrixSimulator(DEPOL)
        initial = StateVector.computational_basis([a, b], (0, 0))
        fidelity = sim.mean_fidelity(circuit, initial)
        p2 = DEPOL.p2
        survivors = 1 - 15 * p2 + 3 * p2  # identity + the 3 pure-Z errors
        assert np.isclose(fidelity, survivors, atol=1e-9)

    def test_damping_fidelity_closed_form(self):
        # An excited qubit idling one single-qudit moment: F = 1 - lambda1.
        a = qubits(1)[0]
        circuit = Circuit([X.on(a)])
        sim = DensityMatrixSimulator(DAMPING)
        initial = StateVector.zero([a])
        lam1 = DAMPING.idle_lambdas(2, DAMPING.gate_time_1q)[0]
        fidelity = sim.mean_fidelity(circuit, initial)
        assert np.isclose(fidelity, 1 - lam1, atol=1e-9)

    def test_trace_preserved_through_noisy_run(self):
        wires = qutrits(2)
        circuit = Circuit(
            [
                X_PLUS_1.on(wires[0]),
                ControlledGate(X01, (3,), (2,)).on(wires[0], wires[1]),
            ]
        )
        sim = DensityMatrixSimulator(MIXED)
        rho = sim.run(circuit, StateVector.zero(wires))
        assert np.isclose(rho.trace(), 1.0, atol=1e-9)


class TestTrajectoryConvergence:
    """Sec. 6.2's claim: trajectories average to the density matrix."""

    @pytest.mark.parametrize("model", [DEPOL, DAMPING, MIXED])
    def test_mean_trajectory_fidelity_converges(self, model):
        a, b = qutrits(2)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b),
                ControlledGate(X01, (3,), (2,)).on(b, a),
                ControlledGate(X_PLUS_1.inverse(), (3,), (1,)).on(a, b),
            ]
        )
        rng = np.random.default_rng(31)
        initial = StateVector.random(
            [a, b], rng, levels_per_wire={a: 2, b: 2}
        )
        exact = DensityMatrixSimulator(model).mean_fidelity(
            circuit, initial
        )
        sim = TrajectorySimulator(model, rng)
        trials = 600
        mean = np.mean(
            [
                sim.run_trajectory(circuit, initial).fidelity
                for _ in range(trials)
            ]
        )
        # Monte-Carlo error at 600 trials is well under 0.02 here.
        assert abs(mean - exact) < 0.02, (model.name, mean, exact)

    def test_convergence_on_qubit_circuit(self):
        circuit, wires = _bell()
        rng = np.random.default_rng(32)
        initial = StateVector.zero(wires)
        exact = DensityMatrixSimulator(DEPOL).mean_fidelity(
            circuit, initial
        )
        sim = TrajectorySimulator(DEPOL, rng)
        mean = np.mean(
            [
                sim.run_trajectory(circuit, initial).fidelity
                for _ in range(600)
            ]
        )
        assert abs(mean - exact) < 0.015
