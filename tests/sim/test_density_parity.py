"""Exact-agreement tests: axis-local density engine vs the v1 dense path.

The noise engine v2 rebuild replaced the full-space ``kron`` embedding
with axis-local leg contractions and a closed-form twirl for symmetric
depolarizing channels.  These tests pin the rebuilt engine to the
preserved reference implementation (:mod:`repro.sim.dense_reference`)
to 1e-12 on mixed qubit/qutrit circuits under every named noise preset.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.depolarizing import two_qudit_depolarizing
from repro.noise.model import NoiseModel
from repro.noise.presets import ALL_MODELS
from repro.qudits import Qudit, qutrits
from repro.sim.dense_reference import DenseDensityMatrixSimulator
from repro.sim.density import DensityMatrixSimulator, DensityTensor
from repro.sim.kernels import channel_kernel
from repro.sim.state import StateVector

TOLERANCE = 1e-12


def _mixed_circuit():
    """Qutrit/qubit/qutrit wires with 1- and 2-wire gates, incl. a gap."""
    wires = [Qudit(0, 3), Qudit(1, 2), Qudit(2, 3)]
    a, b, c = wires
    circuit = Circuit(
        [
            X_PLUS_1.on(a),
            H.on(b),
            ControlledGate(X01, (3,), (2,)).on(a, c),
            ControlledGate(X_PLUS_1, (2,), (1,)).on(b, c),
            X.on(b),
            ControlledGate(X_PLUS_1.inverse(), (3,), (1,)).on(c, a),
        ]
    )
    return circuit, wires


def _random_binary_input(wires, seed):
    rng = np.random.default_rng(seed)
    return StateVector.random(
        wires, rng, levels_per_wire={w: 2 for w in wires}
    )


class TestPresetParity:
    @pytest.mark.parametrize(
        "name", sorted(ALL_MODELS), ids=sorted(ALL_MODELS)
    )
    def test_axis_local_matches_dense_embedding(self, name):
        model = ALL_MODELS[name]
        circuit, wires = _mixed_circuit()
        initial = _random_binary_input(wires, seed=11)
        rho_new = DensityMatrixSimulator(model).run(circuit, initial)
        rho_old = DenseDensityMatrixSimulator(model).run(circuit, initial)
        assert rho_new.wires == rho_old.wires
        diff = np.abs(rho_new.matrix - rho_old.matrix).max()
        assert diff < TOLERANCE, (name, diff)

    @pytest.mark.parametrize(
        "name", sorted(ALL_MODELS), ids=sorted(ALL_MODELS)
    )
    def test_mean_fidelity_parity(self, name):
        model = ALL_MODELS[name]
        circuit, wires = _mixed_circuit()
        initial = _random_binary_input(wires, seed=12)
        new = DensityMatrixSimulator(model).mean_fidelity(circuit, initial)
        old = DenseDensityMatrixSimulator(model).mean_fidelity(
            circuit, initial
        )
        assert abs(new - old) < TOLERANCE


class TestAllQutritParity:
    def test_qutrit_chain_under_mixed_noise(self):
        model = NoiseModel("mixed", 1e-3, 5e-4, 1e-6, 3e-6, t1=1e-4)
        wires = qutrits(3)
        a, b, c = wires
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b),
                ControlledGate(X01, (3,), (2,)).on(b, c),
                X_PLUS_1.on(b),
                ControlledGate(X_PLUS_1.inverse(), (3,), (1,)).on(a, c),
            ]
        )
        initial = _random_binary_input(wires, seed=13)
        rho_new = DensityMatrixSimulator(model).run(circuit, initial)
        rho_old = DenseDensityMatrixSimulator(model).run(circuit, initial)
        assert np.abs(rho_new.matrix - rho_old.matrix).max() < TOLERANCE


class TestTwirlFastPath:
    """The closed-form symmetric-Pauli path equals explicit Kraus summing."""

    @pytest.mark.parametrize("dims", [(2, 2), (3, 3), (3, 2)])
    def test_twirl_matches_kraus_channel_kernel(self, dims):
        p = 1.7e-3
        wires = [Qudit(k, d) for k, d in enumerate(dims)] + [Qudit(9, 3)]
        rng = np.random.default_rng(17)
        initial = StateVector.random(wires, rng)
        channel = two_qudit_depolarizing(dims[0], dims[1], p)
        assert channel.symmetric_pauli_probability == p

        twirled = DensityTensor.from_state(initial)
        twirled.apply_symmetric_depolarizing(p, wires[:2])
        summed = DensityTensor.from_state(initial)
        summed.apply_channel_kernel(channel_kernel(channel), wires[:2])
        assert np.abs(twirled.matrix - summed.matrix).max() < TOLERANCE

    def test_twirl_preserves_trace_and_hermiticity(self):
        wires = qutrits(2)
        initial = StateVector.random(wires, np.random.default_rng(3))
        rho = DensityTensor.from_state(initial)
        rho.apply_symmetric_depolarizing(1e-3, list(wires))
        matrix = rho.matrix
        assert np.isclose(rho.trace(), 1.0, atol=1e-12)
        assert np.allclose(matrix, matrix.conj().T, atol=1e-12)


class TestDensityTensorSurface:
    def test_accepts_flat_matrix_and_tensor_forms(self):
        wires = [Qudit(0, 2), Qudit(1, 3)]
        state = StateVector.random(wires, np.random.default_rng(5))
        flat = np.outer(state.vector, state.vector.conj())
        from_flat = DensityTensor(wires, flat)
        from_state = DensityTensor.from_state(state)
        assert np.allclose(from_flat.matrix, from_state.matrix, atol=0)
        assert from_flat.tensor.shape == (2, 3, 2, 3)

    def test_matrix_view_round_trips_through_tensor(self):
        wires = qutrits(2)
        state = StateVector.random(wires, np.random.default_rng(6))
        rho = DensityTensor.from_state(state)
        rebuilt = DensityTensor(wires, rho.matrix.copy())
        assert np.allclose(rebuilt.tensor, rho.tensor, atol=0)
