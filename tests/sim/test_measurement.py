"""Tests for measurement sampling."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qubit import CNOT, H
from repro.qudits import qubits, qutrits
from repro.sim.measurement import MeasurementResult, sample_state
from repro.sim.state import StateVector
from repro.sim.statevector import StateVectorSimulator


class TestSampling:
    def test_basis_state_is_deterministic(self, rng):
        wires = qutrits(3)
        state = StateVector.computational_basis(wires, (1, 2, 0))
        result = sample_state(state, shots=50, rng=rng)
        assert result.counts() == {(1, 2, 0): 50}

    def test_bell_state_statistics(self, rng):
        a, b = qubits(2)
        state = StateVectorSimulator().run(
            Circuit([H.on(a), CNOT.on(a, b)])
        )
        result = sample_state(state, shots=4000, rng=rng)
        counts = result.counts()
        assert set(counts) == {(0, 0), (1, 1)}
        assert abs(counts[(0, 0)] / 4000 - 0.5) < 0.05

    def test_marginal_wires(self, rng):
        a, b = qubits(2)
        state = StateVectorSimulator().run(
            Circuit([H.on(a), CNOT.on(a, b)])
        )
        result = sample_state(state, shots=500, rng=rng, wires=[b])
        assert result.samples.shape == (500, 1)
        assert set(result.counts()) <= {(0,), (1,)}

    def test_wire_order_respected(self, rng):
        wires = qubits(2)
        state = StateVector.computational_basis(wires, (1, 0))
        result = sample_state(
            state, shots=10, rng=rng, wires=[wires[1], wires[0]]
        )
        assert result.counts() == {(0, 1): 10}

    def test_unknown_wire_rejected(self, rng):
        wires = qubits(2)
        state = StateVector.zero(wires)
        with pytest.raises(ValueError):
            sample_state(state, 1, rng, wires=qutrits(1))

    def test_reproducible_given_seed(self):
        a = qubits(1)[0]
        state = StateVectorSimulator().run(Circuit([H.on(a)]))
        r1 = sample_state(state, 100, np.random.default_rng(5))
        r2 = sample_state(state, 100, np.random.default_rng(5))
        assert np.array_equal(r1.samples, r2.samples)


class TestResultAccessors:
    def test_probability_of(self, rng):
        wires = qubits(1)
        state = StateVector.computational_basis(wires, (1,))
        result = sample_state(state, 20, rng)
        assert result.probability_of((1,)) == 1.0
        assert result.probability_of((0,)) == 0.0

    def test_most_common(self, rng):
        a = qubits(1)[0]
        state = StateVectorSimulator().run(Circuit([H.on(a)]))
        result = sample_state(state, 1000, rng)
        top = result.most_common(2)
        assert len(top) == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            MeasurementResult(qubits(2), np.zeros((5, 3)))

    def test_binary_readout_from_qutrit_circuit(self, rng):
        # The paper's convention: outputs are binary, so sampling a tree
        # output never shows level 2.
        from repro.toffoli.registry import build_toffoli

        result = build_toffoli("qutrit_tree", 3)
        wires = result.controls + [result.target]
        state = StateVectorSimulator().run_basis(
            result.circuit, wires, (1, 1, 1, 0)
        )
        samples = sample_state(state, 200, rng)
        assert samples.counts() == {(1, 1, 1, 1): 200}


class TestVectorizedCounts:
    def test_counts_match_per_row_reference(self, rng):
        # The np.unique(axis=0) histogram must be bit-identical to the
        # historical per-row Counter loop.
        wires = qutrits(3)
        state = StateVector.random(wires, rng)
        result = sample_state(state, 2_000, rng)
        from collections import Counter

        reference = Counter(
            tuple(int(v) for v in row) for row in result.samples
        )
        assert result.counts() == reference

    def test_zero_shot_counts(self):
        result = MeasurementResult(qubits(2), np.zeros((0, 2)))
        assert result.counts() == {}
        assert result.shots == 0

    def test_zero_wire_counts(self, rng):
        # Degenerate but well-defined: every shot measures the empty
        # tuple.
        result = MeasurementResult([], np.zeros((7, 0)))
        assert result.counts() == {(): 7}


class TestCountsBackedResults:
    def test_from_counts_roundtrip(self):
        wires = qubits(2)
        result = MeasurementResult.from_counts(
            wires, {(1, 1): 3, (0, 0): 5}
        )
        assert result.is_counts_backed
        assert result.shots == 8
        assert result.counts() == {(0, 0): 5, (1, 1): 3}

    def test_samples_materialize_lexicographically(self):
        wires = qubits(2)
        result = MeasurementResult.from_counts(
            wires, {(1, 0): 2, (0, 1): 1}
        )
        assert result.samples.tolist() == [[0, 1], [1, 0], [1, 0]]
        assert result.samples.dtype == np.int64

    def test_sample_backed_result_reports_mode(self, rng):
        state = StateVector.zero(qubits(1))
        assert not sample_state(state, 3, rng).is_counts_backed

    def test_accessors_agree_across_modes(self, rng):
        wires = qutrits(2)
        state = StateVector.random(wires, rng)
        sampled = sample_state(state, 1_000, np.random.default_rng(3))
        rebuilt = MeasurementResult.from_counts(
            wires, sampled.counts()
        )
        assert rebuilt.shots == sampled.shots
        assert rebuilt.counts() == sampled.counts()
        assert rebuilt.most_common(2) == sampled.most_common(2)
        for outcome in sampled.counts():
            assert rebuilt.probability_of(outcome) == (
                sampled.probability_of(outcome)
            )

    def test_both_storage_modes_rejected(self):
        wires = qubits(1)
        with pytest.raises(ValueError):
            MeasurementResult(
                wires,
                np.zeros((2, 1)),
                outcomes=np.zeros((1, 1)),
                counts=np.array([2]),
            )
        with pytest.raises(ValueError):
            MeasurementResult(wires)

    def test_counts_shape_validation(self):
        wires = qubits(2)
        with pytest.raises(ValueError):
            MeasurementResult(
                wires,
                outcomes=np.zeros((2, 3)),
                counts=np.array([1, 1]),
            )
        with pytest.raises(ValueError):
            MeasurementResult(
                wires,
                outcomes=np.zeros((2, 2)),
                counts=np.array([1, 1, 1]),
            )

    def test_nonpositive_counts_rejected(self):
        wires = qubits(1)
        with pytest.raises(ValueError):
            MeasurementResult(
                wires,
                outcomes=np.array([[0], [1]]),
                counts=np.array([3, 0]),
            )
