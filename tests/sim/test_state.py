"""Tests for mixed-dimension state vectors."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, SimulationError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.qudits import Qudit, qubits, qudit_line, qutrits
from repro.sim.state import StateVector


class TestConstruction:
    def test_basis_state(self):
        wires = qutrits(2)
        state = StateVector.computational_basis(wires, (1, 2))
        assert state.probability_of((1, 2)) == 1.0
        assert state.norm() == 1.0

    def test_zero_state(self):
        state = StateVector.zero(qubits(3))
        assert state.probability_of((0, 0, 0)) == 1.0

    def test_value_count_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            StateVector.computational_basis(qubits(2), (0,))

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            StateVector.computational_basis(qubits(1), (2,))

    def test_flat_vector_reshaped(self):
        wires = qubits(2)
        state = StateVector(wires, np.array([1, 0, 0, 0], dtype=complex))
        assert state.tensor.shape == (2, 2)

    def test_mixed_dimensions(self):
        wires = qudit_line([2, 3])
        state = StateVector.zero(wires)
        assert state.tensor.shape == (2, 3)


class TestRandom:
    def test_random_normalised(self, rng):
        state = StateVector.random(qutrits(3), rng)
        assert np.isclose(state.norm(), 1.0)

    def test_random_binary_subspace(self, rng):
        wires = qutrits(3)
        caps = {w: 2 for w in wires}
        state = StateVector.random(wires, rng, levels_per_wire=caps)
        for wire in wires:
            populations = state.level_populations(wire)
            assert np.isclose(populations[2], 0.0)

    def test_random_subspace_is_still_random(self, rng):
        wires = qutrits(2)
        caps = {w: 2 for w in wires}
        a = StateVector.random(wires, rng, levels_per_wire=caps)
        b = StateVector.random(wires, rng, levels_per_wire=caps)
        assert a.fidelity(b) < 0.999


class TestEvolution:
    def test_apply_single_qudit_gate(self):
        wires = qutrits(1)
        state = StateVector.zero(wires)
        state.apply_operation(X_PLUS_1.on(wires[0]))
        assert state.probability_of((1,)) == 1.0

    def test_apply_gate_to_middle_wire(self):
        wires = qutrits(3)
        state = StateVector.zero(wires)
        state.apply_operation(X_PLUS_1.on(wires[1]))
        assert state.probability_of((0, 1, 0)) == 1.0

    def test_apply_two_qudit_gate_wire_order(self):
        a, b = qubits(2)
        state = StateVector.computational_basis([a, b], (1, 0))
        state.apply_operation(CNOT.on(a, b))
        assert state.probability_of((1, 1)) == 1.0
        # Reversed roles: control b is 0, nothing happens.
        state2 = StateVector.computational_basis([a, b], (1, 0))
        state2.apply_operation(CNOT.on(b, a))
        assert state2.probability_of((1, 0)) == 1.0

    def test_apply_controlled_qutrit_gate(self):
        a, b = qutrits(2)
        state = StateVector.computational_basis([a, b], (2, 1))
        state.apply_operation(ControlledGate(X01, (3,), (2,)).on(a, b))
        assert state.probability_of((2, 0)) == 1.0

    def test_superposition_amplitudes(self):
        a = Qudit(0, 2)
        state = StateVector.zero([a])
        state.apply_operation(H.on(a))
        assert np.isclose(state.probability_of((0,)), 0.5)
        assert np.isclose(state.probability_of((1,)), 0.5)

    def test_apply_matrix_non_unitary_then_renormalize(self):
        a = Qudit(0, 2)
        state = StateVector.zero([a])
        state.apply_operation(H.on(a))
        # Project onto |0> (a Kraus-style operation).
        state.apply_matrix(np.array([[1, 0], [0, 0]]), [a])
        norm = state.renormalize()
        assert np.isclose(norm, 1 / np.sqrt(2))
        assert np.isclose(state.probability_of((0,)), 1.0)

    def test_renormalize_zero_state_raises(self):
        a = Qudit(0, 2)
        state = StateVector.zero([a])
        state.apply_matrix(np.zeros((2, 2)), [a])
        with pytest.raises(SimulationError):
            state.renormalize()


class TestObservables:
    def test_level_populations(self):
        wires = qutrits(2)
        state = StateVector.computational_basis(wires, (2, 0))
        assert np.allclose(state.level_populations(wires[0]), [0, 0, 1])
        assert np.allclose(state.level_populations(wires[1]), [1, 0, 0])

    def test_populations_of_superposition(self):
        a, b = qubits(2)
        state = StateVector.zero([a, b])
        state.apply_operation(H.on(a))
        assert np.allclose(state.level_populations(a), [0.5, 0.5])
        assert np.allclose(state.level_populations(b), [1.0, 0.0])

    def test_overlap_and_fidelity(self):
        wires = qubits(1)
        zero = StateVector.zero(wires)
        one = StateVector.computational_basis(wires, (1,))
        assert zero.fidelity(one) == 0.0
        assert np.isclose(zero.fidelity(zero), 1.0)

    def test_overlap_requires_same_wires(self):
        with pytest.raises(SimulationError):
            StateVector.zero(qubits(1)).overlap(StateVector.zero(qutrits(1)))

    def test_copy_is_independent(self):
        a = Qudit(0, 2)
        state = StateVector.zero([a])
        clone = state.copy()
        clone.apply_operation(X.on(a))
        assert state.probability_of((0,)) == 1.0
        assert clone.probability_of((1,)) == 1.0
