"""Kernel caches: correctness of the lowered blocks and cache identity."""

import numpy as np
import pytest

from repro.gates.matrix import MatrixGate
from repro.gates.qubit import CNOT, H
from repro.gates.qutrit import X_PLUS_1
from repro.noise.damping import amplitude_damping_channel
from repro.noise.depolarizing import (
    single_qudit_depolarizing,
    two_qudit_depolarizing,
)
from repro.qudits import qubits, qutrits
from repro.sim.kernels import (
    channel_kernel,
    clear_kernel_caches,
    gate_kernel,
    kernel_cache_stats,
    permutation_kernel,
)


class TestGateKernels:
    def test_block_is_reshaped_unitary(self):
        a, b = qubits(2)
        op = CNOT.on(a, b)
        kernel = gate_kernel(op)
        assert kernel.dims == (2, 2)
        assert kernel.block.shape == (2, 2, 2, 2)
        assert np.allclose(
            kernel.block.reshape(4, 4), CNOT.unitary(), atol=0
        )
        assert np.allclose(kernel.conj_block, kernel.block.conj(), atol=0)

    def test_structurally_equal_gates_share_one_entry(self):
        clear_kernel_caches()
        a, b = qubits(2), qutrits(1)[0]
        gate_kernel(H.on(a[0]))
        count = kernel_cache_stats()["gate_kernels"]
        # Same gate on a different wire: no new kernel.
        gate_kernel(H.on(a[1]))
        assert kernel_cache_stats()["gate_kernels"] == count
        # A hand-built matrix gate with the same matrix also matches the
        # canonical (content-addressed) spec.
        clone = MatrixGate(H.unitary(), (2,), name="h-clone")
        gate_kernel(clone.on(a[0]))
        assert kernel_cache_stats()["gate_kernels"] == count
        # A genuinely different gate adds one.
        gate_kernel(X_PLUS_1.on(b))
        assert kernel_cache_stats()["gate_kernels"] == count + 1

    def test_cached_block_matches_fresh_computation(self):
        a, b = qutrits(2)
        from repro.gates.controlled import ControlledGate

        op = ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b)
        first = gate_kernel(op)
        second = gate_kernel(op)
        assert first is second
        assert np.allclose(
            first.block.reshape(9, 9), op.unitary(), atol=0
        )


class TestChannelKernels:
    def test_kraus_channel_blocks(self):
        channel = amplitude_damping_channel(3, (0.1, 0.2))
        kernel = channel_kernel(channel)
        assert kernel.dims == (3,)
        assert len(kernel.blocks) == 3
        stacked = [b.reshape(3, 3) for b in kernel.blocks]
        completeness = sum(op.conj().T @ op for op in stacked)
        assert np.allclose(completeness, np.eye(3), atol=1e-12)

    def test_mixture_lowering_is_trace_preserving(self):
        channel = single_qudit_depolarizing(3, 1e-3)
        kernel = channel_kernel(channel)
        # identity branch + 8 Paulis
        assert len(kernel.blocks) == 9
        stacked = [b.reshape(3, 3) for b in kernel.blocks]
        completeness = sum(op.conj().T @ op for op in stacked)
        assert np.allclose(completeness, np.eye(3), atol=1e-12)

    def test_two_qudit_mixture_kernel_shape(self):
        channel = two_qudit_depolarizing(3, 3, 1e-4)
        kernel = channel_kernel(channel)
        assert kernel.dims == (3, 3)
        assert len(kernel.blocks) == 81  # identity + 80 error terms
        assert kernel.blocks[0].shape == (3, 3, 3, 3)

    def test_channel_kernel_cached_per_instance(self):
        channel = amplitude_damping_channel(2, (0.25,))
        assert channel_kernel(channel) is channel_kernel(channel)

    def test_clear_resets_counts(self):
        gate_kernel(H.on(qubits(1)[0]))
        channel_kernel(single_qudit_depolarizing(2, 1e-3))
        permutation_kernel(CNOT.on(*qubits(2)))
        clear_kernel_caches()
        stats = kernel_cache_stats()
        assert stats == {
            "gate_kernels": 0,
            "channel_kernels": 0,
            "permutation_kernels": 0,
            "permutation_gathers": 0,
            "segment_gathers": 0,
        }


class TestPermutationKernels:
    def test_permutation_gate_lowers_to_table(self):
        a, b = qubits(2)
        kernel = permutation_kernel(CNOT.on(a, b))
        assert kernel.is_permutation
        assert kernel.dims == (2, 2)
        assert kernel.table.tolist() == [0, 1, 3, 2]
        assert kernel.weights.tolist() == [2, 1]

    def test_mixed_radix_weights(self):
        t, q = qutrits(1)[0], qubits(1, start=5)[0]
        from repro.gates.controlled import ControlledGate
        from repro.gates.qubit import X

        op = ControlledGate(X, (3,), (2,)).on(t, q)
        kernel = permutation_kernel(op)
        assert kernel.weights.tolist() == [2, 1]
        assert kernel.dims == (3, 2)
        # |2,0> -> |2,1> and |2,1> -> |2,0>; everything else fixed.
        assert kernel.table.tolist() == [0, 1, 2, 3, 5, 4]

    def test_non_permutation_gate_marked(self):
        kernel = permutation_kernel(H.on(qubits(1)[0]))
        assert not kernel.is_permutation
        assert kernel.table is None

    def test_cached_on_canonical_spec(self):
        a, b = qubits(2), qubits(2, start=7)
        first = permutation_kernel(CNOT.on(*a))
        second = permutation_kernel(CNOT.on(*b))
        assert first is second

    def test_table_is_read_only(self):
        kernel = permutation_kernel(CNOT.on(*qubits(2)))
        with pytest.raises(ValueError):
            kernel.table[0] = 3
