"""Tests for the quantum-trajectory simulator (Algorithm 1)."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.model import NoiseModel
from repro.noise.presets import SC, DRESSED_QUTRIT
from repro.qudits import qubits, qutrits
from repro.sim.state import StateVector
from repro.sim.trajectory import TrajectorySimulator

NOISELESS = NoiseModel("noiseless", 0.0, 0.0, 1e-7, 3e-7, t1=None)
GATE_HEAVY = NoiseModel("gate_heavy", 0.02, 0.01, 1e-7, 3e-7, t1=None)
DAMP_ONLY = NoiseModel("damp_only", 0.0, 0.0, 1e-4, 1e-4, t1=1e-3)


def _bell_circuit():
    a, b = qubits(2)
    return Circuit([H.on(a), CNOT.on(a, b)]), [a, b]


class TestNoiselessLimit:
    def test_fidelity_is_one_without_noise(self, rng):
        circuit, wires = _bell_circuit()
        sim = TrajectorySimulator(NOISELESS, rng)
        initial = StateVector.zero(wires)
        result = sim.run_trajectory(circuit, initial)
        assert np.isclose(result.fidelity, 1.0)
        assert result.gate_errors == 0
        assert result.idle_jumps == 0

    def test_qutrit_circuit_noiseless(self, rng):
        a, b = qutrits(2)
        circuit = Circuit(
            [X_PLUS_1.on(a), ControlledGate(X01, (3,), (1,)).on(a, b)]
        )
        sim = TrajectorySimulator(NOISELESS, rng)
        result = sim.run_trajectory(circuit, StateVector.zero([a, b]))
        assert np.isclose(result.fidelity, 1.0)


class TestErrorAccounting:
    def test_gate_errors_recorded(self, rng):
        circuit, wires = _bell_circuit()
        sim = TrajectorySimulator(GATE_HEAVY, rng)
        total_errors = 0
        for _ in range(200):
            result = sim.run_trajectory(circuit, StateVector.zero(wires))
            total_errors += result.gate_errors
        # Expected: 2 gates, total error prob 3*0.02 + 15*0.01 = 0.21/run.
        assert 10 < total_errors < 90

    def test_idle_jumps_recorded(self, rng):
        a, b = qubits(2)
        # Excited wire idling for many long moments under heavy damping.
        circuit = Circuit([X.on(a)])
        for _ in range(30):
            circuit.append_moment([X.on(b), ])
        sim = TrajectorySimulator(DAMP_ONLY, rng)
        jumps = 0
        for _ in range(50):
            result = sim.run_trajectory(
                circuit, StateVector.zero([a, b])
            )
            jumps += result.idle_jumps
        assert jumps > 0

    def test_fidelity_degrades_with_noise(self, rng):
        circuit, wires = _bell_circuit()
        sim = TrajectorySimulator(GATE_HEAVY, rng)
        fidelities = [
            sim.run_trajectory(circuit, StateVector.zero(wires)).fidelity
            for _ in range(100)
        ]
        assert 0.5 < np.mean(fidelities) < 0.999


class TestInputs:
    def test_random_binary_input_avoids_level_two(self, rng):
        wires = qutrits(3)
        sim = TrajectorySimulator(DRESSED_QUTRIT, rng)
        state = sim.random_binary_input(wires)
        for wire in wires:
            assert np.isclose(state.level_populations(wire)[2], 0.0)

    def test_ideal_final_state_matches_plain_run(self, rng):
        circuit, wires = _bell_circuit()
        initial = StateVector.zero(wires)
        ideal = TrajectorySimulator.ideal_final_state(circuit, initial)
        assert np.isclose(ideal.probability_of((0, 0)), 0.5)

    def test_state_must_cover_circuit(self, rng):
        circuit, wires = _bell_circuit()
        sim = TrajectorySimulator(SC, rng)
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            sim.run_trajectory(circuit, StateVector.zero(wires[:1]))

    def test_deterministic_given_seed(self):
        circuit, wires = _bell_circuit()
        results = []
        for _ in range(2):
            sim = TrajectorySimulator(SC, np.random.default_rng(99))
            initial = StateVector.zero(wires)
            results.append(sim.run_trajectory(circuit, initial).fidelity)
        assert results[0] == results[1]
