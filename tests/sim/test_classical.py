"""Tests for the linear-time classical simulator (paper Sec. 6)."""

import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import NotClassicalError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.qudits import qubits, qutrits


class TestRun:
    def test_simple_chain(self, classical_sim):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])
        assert classical_sim.run(circuit, {a: 0, b: 0}) == {a: 1, b: 1}

    def test_run_values_positional(self, classical_sim):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        assert classical_sim.run_values(circuit, [a, b], (1, 1)) == (1, 0)

    def test_qutrit_elevation_chain(self, classical_sim):
        a, b = qutrits(2)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b),
                ControlledGate(X01, (3,), (2,)).on(b, a),
            ]
        )
        # a=1 elevates b from 1 to 2; then b=2 flips a to 0.
        assert classical_sim.run_values(circuit, [a, b], (1, 1)) == (0, 2)

    def test_non_classical_gate_raises(self, classical_sim):
        a = qubits(1)[0]
        circuit = Circuit([H.on(a)])
        with pytest.raises(NotClassicalError):
            classical_sim.run(circuit, {a: 0})


class TestTruthTable:
    def test_cnot_truth_table(self, classical_sim):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        table = classical_sim.truth_table(circuit, [a, b])
        assert table[(1, 0)] == (1, 1)
        assert table[(0, 1)] == (0, 1)
        assert len(table) == 4

    def test_truth_table_with_level_restriction(self, classical_sim):
        a, b = qutrits(2)
        circuit = Circuit([ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b)])
        table = classical_sim.truth_table(
            circuit, [a, b], input_levels={a: (0, 1), b: (0, 1)}
        )
        assert len(table) == 4
        assert table[(1, 1)] == (1, 2)

    def test_truth_table_full_levels_by_default(self, classical_sim):
        a = qutrits(1)[0]
        circuit = Circuit([X_PLUS_1.on(a)])
        table = classical_sim.truth_table(circuit, [a])
        assert len(table) == 3


class TestClassicalityCheck:
    def test_classical_circuit_detected(self, classical_sim):
        a, b = qubits(2)
        assert classical_sim.is_classical_circuit(Circuit([CNOT.on(a, b)]))

    def test_non_classical_circuit_detected(self, classical_sim):
        a = qubits(1)[0]
        assert not classical_sim.is_classical_circuit(Circuit([H.on(a)]))

    def test_gate_classical_only_at_zero_rejected(self, classical_sim):
        # Regression: the old check probed gates with the all-zeros input
        # through classical_action.  A gate whose classical_action answers
        # at zero but whose unitary is not a permutation must be rejected
        # (classicality now comes from the whole-domain table lowering).
        from tests.sim.test_classical_batch import (
            _ZeroFixingNonClassicalGate,
        )

        a = qubits(1)[0]
        gate = _ZeroFixingNonClassicalGate()
        assert gate.classical_action((0,)) == (0,)
        assert not classical_sim.is_classical_circuit(Circuit([gate.on(a)]))
