"""Statistical battery for batched shot sampling.

Everything here is deterministic: fixed seeds make the chi-square
statistics reproducible, so the goodness-of-fit thresholds are real
assertions, not flaky tolerances.  Critical values are hardcoded at
alpha = 0.01 (CI has numpy and pytest only — no scipy).
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qubit import CNOT, H
from repro.gates.qutrit import QUTRIT_H, X_PLUS_1
from repro.qudits import qubits, qutrits
from repro.sim.measurement import sample_counts, sample_state
from repro.sim.state import StateVector
from repro.sim.statevector import StateVectorSimulator

#: chi-square critical values at alpha = 0.01, indexed by dof.
CHI2_CRITICAL_001 = {
    1: 6.635, 2: 9.210, 3: 11.345, 4: 13.277, 5: 15.086,
    6: 16.812, 7: 18.475, 8: 20.090, 9: 21.666, 10: 23.209,
}


def chi_square_statistic(counts, state, shots):
    """(statistic, dof) of observed counts vs the exact distribution."""
    probabilities = np.abs(state.vector) ** 2
    dims = [w.dimension for w in state.wires]
    observed = np.zeros(probabilities.size)
    for outcome, count in counts.items():
        flat = 0
        for value, dim in zip(outcome, dims):
            flat = flat * dim + value
        observed[flat] = count
    support = probabilities * shots > 0
    assert observed[~support].sum() == 0, "impossible outcome sampled"
    expected = probabilities[support] * shots
    statistic = float(((observed[support] - expected) ** 2 / expected).sum())
    return statistic, int(support.sum()) - 1


def bell_state():
    a, b = qubits(2)
    return StateVectorSimulator().run(Circuit([H.on(a), CNOT.on(a, b)]))


class TestDeterminism:
    def test_same_seed_same_counts(self):
        state = bell_state()
        first = sample_counts(state, 10_000, rng=7)
        second = sample_counts(state, 10_000, rng=7)
        assert first.counts() == second.counts()

    def test_different_seeds_differ(self):
        state = bell_state()
        first = sample_counts(state, 10_000, rng=7)
        second = sample_counts(state, 10_000, rng=8)
        assert first.counts() != second.counts()

    @pytest.mark.parametrize("batch_size", [1, 3, 97, 1_000, 10_000, None])
    def test_counts_independent_of_batch_size(self, batch_size):
        # Generator.random draws sequentially, so chunked uniforms
        # concatenate to the unchunked stream: any batch size yields
        # bit-identical counts for one seed.
        state = bell_state()
        reference = sample_counts(state, 1_000, rng=11)
        chunked = sample_counts(state, 1_000, rng=11, batch_size=batch_size)
        assert chunked.counts() == reference.counts()

    def test_generator_and_int_seed_agree(self):
        state = bell_state()
        by_int = sample_counts(state, 500, rng=3)
        by_generator = sample_counts(
            state, 500, rng=np.random.default_rng(3)
        )
        assert by_int.counts() == by_generator.counts()


class TestBatchedVersusLooped:
    def test_counts_match_per_shot_reference_exactly(self):
        # sample_counts and sample_state share one flat-outcome
        # primitive, so at the same seed the batched histogram equals
        # the per-shot sample array exactly — not just statistically.
        state = bell_state()
        batched = sample_counts(state, 5_000, rng=13)
        looped = sample_state(state, 5_000, rng=13)
        assert batched.counts() == looped.counts()

    def test_marginal_counts_match_reference(self):
        wires = qutrits(3)
        state = StateVector.random(wires, np.random.default_rng(2))
        subset = [wires[2], wires[0]]
        batched = sample_counts(state, 3_000, rng=17, wires=subset)
        looped = sample_state(state, 3_000, rng=17, wires=subset)
        assert batched.counts() == looped.counts()


class TestGoodnessOfFit:
    def test_bell_state_chi_square(self):
        state = bell_state()
        shots = 100_000
        counts = sample_counts(state, shots, rng=20190608).counts()
        statistic, dof = chi_square_statistic(counts, state, shots)
        assert statistic <= CHI2_CRITICAL_001[dof]

    def test_qutrit_superposition_chi_square(self):
        wire = qutrits(1)[0]
        state = StateVectorSimulator().run(Circuit([QUTRIT_H.on(wire)]))
        shots = 90_000
        counts = sample_counts(state, shots, rng=20190608).counts()
        statistic, dof = chi_square_statistic(counts, state, shots)
        assert dof == 2
        assert statistic <= CHI2_CRITICAL_001[dof]

    def test_skewed_distribution_chi_square(self):
        wires = qubits(2)
        amplitudes = np.sqrt([0.7, 0.2, 0.09, 0.01])
        state = StateVector(wires, amplitudes.astype(complex))
        shots = 50_000
        counts = sample_counts(state, shots, rng=99).counts()
        statistic, dof = chi_square_statistic(counts, state, shots)
        assert statistic <= CHI2_CRITICAL_001[dof]


class TestQutritPopulations:
    def test_binary_inputs_yield_binary_outputs(self):
        # The paper's convention: qutrit circuits compute on binary
        # inputs and outputs; |2> appears only transiently inside the
        # circuit.  Sampling the tree output must never show level 2.
        from repro.toffoli.registry import build_toffoli

        result = build_toffoli("qutrit_tree", 4)
        wires = result.controls + [result.target]
        state = StateVectorSimulator().run_basis(
            result.circuit, wires, (1, 1, 1, 1, 0)
        )
        counts = sample_counts(state, 2_000, rng=5).counts()
        assert counts == {(1, 1, 1, 1, 1): 2_000}

    def test_intermediate_level_two_is_visible(self):
        # An undone X_PLUS_1 leaves |2> populated; sampling must
        # report it (the sampler covers the full qutrit alphabet).
        wire = qutrits(1)[0]
        circuit = Circuit([X_PLUS_1.on(wire), X_PLUS_1.on(wire)])
        state = StateVectorSimulator().run(circuit)
        counts = sample_counts(state, 100, rng=1).counts()
        assert counts == {(2,): 100}

    def test_level_two_population_fraction(self):
        # Equal qutrit superposition: the |2> marginal must be close
        # to 1/3 (binomial 5-sigma band at 90k shots: ~0.8%).
        wire = qutrits(1)[0]
        state = StateVectorSimulator().run(
            Circuit([QUTRIT_H.on(wire)])
        )
        shots = 90_000
        counts = sample_counts(state, shots, rng=42).counts()
        fraction = counts[(2,)] / shots
        assert abs(fraction - 1 / 3) < 0.008


class TestEdgeCases:
    def test_zero_shots(self):
        state = bell_state()
        result = sample_counts(state, 0, rng=1)
        assert result.shots == 0
        assert result.counts() == {}
        assert result.samples.shape == (0, 2)

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError):
            sample_counts(bell_state(), -1, rng=1)

    def test_unknown_marginal_wire_rejected(self):
        with pytest.raises(ValueError):
            sample_counts(bell_state(), 10, rng=1, wires=qutrits(1))

    def test_marginal_wire_order_respected(self):
        wires = qubits(2)
        state = StateVector.computational_basis(wires, (1, 0))
        result = sample_counts(
            state, 10, rng=1, wires=[wires[1], wires[0]]
        )
        assert result.counts() == {(0, 1): 10}

    def test_complex64_state_samples(self):
        # Probabilities are computed in float64 even for complex64
        # amplitudes, so normalisation round-off cannot skew the draw.
        state = bell_state().astype(np.complex64)
        counts = sample_counts(state, 4_000, rng=9).counts()
        assert set(counts) == {(0, 0), (1, 1)}
        assert sum(counts.values()) == 4_000


class TestSimulatorSurface:
    def test_simulator_sample_counts_runs_circuit(self):
        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        result = StateVectorSimulator().sample_counts(
            circuit, 1_000, seed=21
        )
        assert set(result.counts()) == {(0, 0), (1, 1)}

    def test_simulator_seed_determinism(self):
        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        sim = StateVectorSimulator()
        first = sim.sample_counts(circuit, 500, seed=4)
        second = sim.sample_counts(circuit, 500, seed=4, batch_size=37)
        assert first.counts() == second.counts()

    def test_simulator_measure_wires(self):
        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        result = StateVectorSimulator().sample_counts(
            circuit, 300, seed=6, measure_wires=[b]
        )
        assert set(result.counts()) <= {(0,), (1,)}
        assert result.wires == [b]
