"""Batched trajectory engine: statistics, determinism, and edge cases.

The batched engine consumes its RNG stream differently from the looped
reference, so fixed-seed results are compared *statistically* (same
distribution), while determinism is asserted draw-for-draw per engine.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.model import NoiseModel
from repro.qudits import qubits, qutrits
from repro.sim.density import DensityMatrixSimulator
from repro.sim.fidelity import (
    estimate_circuit_fidelity,
    resolve_batch_size,
)
from repro.sim.state import StateVector
from repro.sim.trajectory import BatchedTrajectorySimulator

DEPOL = NoiseModel("depol", 2e-3, 1e-3, 1e-7, 3e-7, t1=None)
MIXED = NoiseModel("mixed", 1e-3, 5e-4, 1e-6, 3e-6, t1=1e-4)
DEPHASING = NoiseModel(
    "dephasing", 0.0, 0.0, 1e-6, 3e-6, t1=None, idle_dephasing_rate=0.03
)


def _qutrit_circuit():
    a, b = qutrits(2)
    return (
        Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b),
                ControlledGate(X01, (3,), (2,)).on(b, a),
                ControlledGate(X_PLUS_1.inverse(), (3,), (1,)).on(a, b),
            ]
        ),
        [a, b],
    )


def _ghz_circuit(width=3):
    wires = qubits(width)
    ops = [H.on(wires[0])]
    ops.extend(CNOT.on(wires[i], wires[i + 1]) for i in range(width - 1))
    return Circuit(ops), wires


class TestBatchedVsDensity:
    @pytest.mark.parametrize("model", [DEPOL, MIXED, DEPHASING])
    def test_batched_mean_converges_to_exact(self, model):
        circuit, wires = _qutrit_circuit()
        rng = np.random.default_rng(31)
        initial = StateVector.random(
            wires, rng, levels_per_wire={w: 2 for w in wires}
        )
        exact = DensityMatrixSimulator(model).mean_fidelity(
            circuit, initial
        )
        simulator = BatchedTrajectorySimulator(model, rng)
        results = simulator.run_batch(circuit, [initial] * 1200)
        mean = np.mean([r.fidelity for r in results])
        assert abs(mean - exact) < 0.015, (model.name, mean, exact)


class TestBatchedVsLooped:
    def test_fixed_seed_statistics_agree(self):
        # The satellite requirement: batched and looped estimates from
        # fixed seeds must agree within combined error bars.
        circuit, _ = _ghz_circuit()
        model = NoiseModel("noisy", 5e-3, 2e-3, 1e-7, 3e-7, t1=None)
        batched = estimate_circuit_fidelity(
            circuit, model, trials=400, seed=42
        )
        looped = estimate_circuit_fidelity(
            circuit, model, trials=400, seed=42, batch_size=1
        )
        tolerance = 4 * (batched.std_error + looped.std_error) + 1e-3
        assert abs(
            batched.mean_fidelity - looped.mean_fidelity
        ) < max(tolerance, 0.05)
        # Error-rate statistics must agree too, not just fidelity.
        assert abs(
            batched.mean_gate_errors - looped.mean_gate_errors
        ) < 0.35 * max(batched.mean_gate_errors, 0.2)

    def test_batch_of_one_matches_distribution_shape(self):
        circuit, wires = _qutrit_circuit()
        simulator = BatchedTrajectorySimulator(
            MIXED, np.random.default_rng(8)
        )
        initial = StateVector.zero(wires)
        results = simulator.run_batch(circuit, [initial])
        assert len(results) == 1
        assert 0.0 <= results[0].fidelity <= 1.0 + 1e-9


class TestDeterminism:
    def test_batched_estimate_reproducible(self):
        circuit, _ = _ghz_circuit()
        model = NoiseModel("noisy", 5e-3, 2e-3, 1e-7, 3e-7, t1=None)
        a = estimate_circuit_fidelity(circuit, model, trials=50, seed=9)
        b = estimate_circuit_fidelity(circuit, model, trials=50, seed=9)
        assert a.mean_fidelity == b.mean_fidelity
        assert a.mean_gate_errors == b.mean_gate_errors

    def test_batch_size_changes_stream_not_distribution(self):
        circuit, _ = _ghz_circuit()
        model = NoiseModel("noisy", 5e-3, 2e-3, 1e-7, 3e-7, t1=None)
        full = estimate_circuit_fidelity(
            circuit, model, trials=60, seed=3, batch_size=60
        )
        chunked = estimate_circuit_fidelity(
            circuit, model, trials=60, seed=3, batch_size=16
        )
        # Different chunking => different draws...
        assert full.mean_fidelity != chunked.mean_fidelity
        # ...but the same distribution (generous bound; both are tight
        # estimates of the same mean).
        assert abs(full.mean_fidelity - chunked.mean_fidelity) < 0.1

    def test_noiseless_batched_estimate_is_unity(self):
        circuit, _ = _ghz_circuit()
        clean = NoiseModel("clean", 0.0, 0.0, 1e-7, 3e-7, t1=None)
        estimate = estimate_circuit_fidelity(
            circuit, clean, trials=8, seed=1
        )
        assert np.isclose(estimate.mean_fidelity, 1.0)
        assert estimate.mean_gate_errors == 0.0
        assert estimate.mean_idle_jumps == 0.0


class TestResolveBatchSize:
    def test_single_trial_never_batches(self):
        assert resolve_batch_size(None, qubits(2), 1) == 1
        assert resolve_batch_size(64, qubits(2), 1) == 1

    def test_explicit_value_clamped_to_trials(self):
        assert resolve_batch_size(500, qubits(2), 40) == 40
        assert resolve_batch_size(0, qubits(2), 40) == 1

    def test_auto_scales_down_with_state_size(self):
        small_state = resolve_batch_size(None, qubits(2), 10_000)
        large_state = resolve_batch_size(None, qutrits(10), 10_000)
        assert small_state > large_state
        assert large_state >= 1

    def test_auto_is_deterministic_in_shapes_only(self):
        assert resolve_batch_size(None, qutrits(5), 300) == (
            resolve_batch_size(None, qutrits(5), 300)
        )


class TestEdgeCases:
    def test_empty_batch_returns_empty(self):
        circuit, _ = _qutrit_circuit()
        simulator = BatchedTrajectorySimulator(
            MIXED, np.random.default_rng(0)
        )
        assert simulator.run_batch(circuit, []) == []

    def test_mismatched_wire_orders_rejected(self):
        circuit, wires = _qutrit_circuit()
        simulator = BatchedTrajectorySimulator(
            MIXED, np.random.default_rng(0)
        )
        forward = StateVector.zero(wires)
        backward = StateVector.zero(list(reversed(wires)))
        with pytest.raises(SimulationError):
            simulator.run_batch(circuit, [forward, backward])

    def test_state_must_cover_circuit_wires(self):
        circuit, wires = _qutrit_circuit()
        simulator = BatchedTrajectorySimulator(
            MIXED, np.random.default_rng(0)
        )
        partial = StateVector.zero(wires[:1])
        with pytest.raises(SimulationError):
            simulator.run_batch(circuit, [partial])

    def test_random_binary_inputs_stay_binary(self):
        _, wires = _qutrit_circuit()
        simulator = BatchedTrajectorySimulator(
            MIXED, np.random.default_rng(4)
        )
        for state in simulator.random_binary_inputs(wires, 5):
            tensor = state.tensor
            assert np.allclose(tensor[2, :], 0.0)
            assert np.allclose(tensor[:, 2], 0.0)

    def test_counters_match_looped_scale(self):
        # Gate-error counts from the two engines must track the same
        # expectation (40 gates x 80 p2 here).
        p2 = 2e-3
        model = NoiseModel("m", 0.0, p2, 1e-7, 3e-7, t1=None)
        a, b = qutrits(2)
        op = ControlledGate(X_PLUS_1, (3,), (1,))
        circuit = Circuit([op.on(a, b) for _ in range(40)])
        simulator = BatchedTrajectorySimulator(
            model, np.random.default_rng(2)
        )
        initial = StateVector.zero([a, b])
        results = simulator.run_batch(circuit, [initial] * 300)
        measured = np.mean([r.gate_errors for r in results])
        expected = 40 * 80 * p2
        assert abs(measured - expected) < 0.3 * expected + 0.05
