"""Bench harness: smoke run, JSON shape, and rendering."""

import json

import pytest

from repro.analysis.bench import (
    SCHEMA,
    VERIFY_SCHEMA,
    bench_density,
    bench_verify_speedup,
    bench_verify_width14,
    render_report,
    render_verify_report,
    run_bench,
    run_verify_bench,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke=True, seed=7)


@pytest.mark.slow
class TestRunBench:
    def test_report_shape(self, smoke_report):
        assert smoke_report["schema"] == SCHEMA
        assert smoke_report["smoke"] is True
        assert smoke_report["seed"] == 7
        assert {"density", "trajectory", "workloads", "platform"} <= set(
            smoke_report
        )

    def test_density_suite_records_speedup_and_parity(self, smoke_report):
        density = smoke_report["density"]
        assert density["axis_local_seconds"] > 0
        assert density["dense_kron_seconds"] > 0
        assert density["speedup"] > 1.0
        assert density["parity_max_abs_diff"] < 1e-12

    def test_trajectory_suite_engines_agree(self, smoke_report):
        trajectory = smoke_report["trajectory"]
        assert trajectory["batched_seconds"] > 0
        assert trajectory["looped_seconds"] > 0
        scale = max(trajectory["combined_two_sigma"] * 2, 0.05)
        assert abs(
            trajectory["batched_mean_fidelity"]
            - trajectory["looped_mean_fidelity"]
        ) < scale

    def test_workloads_are_physical(self, smoke_report):
        assert smoke_report["workloads"]
        for record in smoke_report["workloads"]:
            assert 0.0 <= record["mean_fidelity"] <= 1.0 + 1e-9
            assert record["seconds"] > 0

    def test_report_serializes_and_renders(self, smoke_report, tmp_path):
        path = write_report(smoke_report, tmp_path / "BENCH_noise.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        text = render_report(smoke_report)
        assert "density" in text and "speedup" in text


@pytest.mark.slow
class TestBenchDensity:
    def test_custom_workload_record(self):
        record = bench_density(num_controls=2, repeats=1)
        assert record["wires"] == 3
        assert record["hilbert_dim"] == 27
        assert record["parity_max_abs_diff"] < 1e-12


class TestVerifyBench:
    def test_smoke_report_shape(self, tmp_path):
        report = run_verify_bench(smoke=True)
        assert report["schema"] == VERIFY_SCHEMA
        assert report["smoke"] is True
        speedup = report["speedup"]
        assert speedup["batched_seconds"] > 0
        assert speedup["looped_seconds"] > 0
        assert speedup["decisions_agree"] is True
        widest = report["width14"]
        assert widest["completed"] is True
        assert widest["inputs"] == 2 ** widest["width"]
        path = write_report(report, tmp_path / "BENCH_verify.json")
        assert json.loads(path.read_text())["schema"] == VERIFY_SCHEMA
        text = render_verify_report(report)
        assert "speedup" in text and "exhaustive" in text

    def test_speedup_record_counts_every_input(self):
        record = bench_verify_speedup(num_controls=3, repeats=1)
        assert record["inputs"] == 2**4
        assert record["width"] == 4
        assert record["speedup"] > 0

    def test_width_record_covers_the_binary_space(self):
        record = bench_verify_width14(num_controls=5)
        assert record["width"] == 6
        assert record["inputs"] == 2**6
        assert record["seconds"] > 0
