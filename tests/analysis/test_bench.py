"""Bench harness: smoke run, JSON shape, and rendering."""

import json

import pytest

from repro.analysis.bench import (
    ROUTE_SCHEMA,
    ROUTE_SMOKE_WIDTHS,
    ROUTE_WIDTHS,
    SCHEMA,
    STATE_SCHEMA,
    VERIFY_SCHEMA,
    bench_density,
    bench_route_case,
    bench_verify_speedup,
    bench_verify_width14,
    check_route_regression,
    check_state_regression,
    render_report,
    render_route_report,
    render_state_report,
    render_verify_report,
    route_record_key,
    run_bench,
    run_route_bench,
    run_state_bench,
    run_verify_bench,
    state_record_key,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke=True, seed=7)


@pytest.mark.slow
class TestRunBench:
    def test_report_shape(self, smoke_report):
        assert smoke_report["schema"] == SCHEMA
        assert smoke_report["smoke"] is True
        assert smoke_report["seed"] == 7
        assert {"density", "trajectory", "workloads", "platform"} <= set(
            smoke_report
        )

    def test_density_suite_records_speedup_and_parity(self, smoke_report):
        density = smoke_report["density"]
        assert density["axis_local_seconds"] > 0
        assert density["dense_kron_seconds"] > 0
        assert density["speedup"] > 1.0
        assert density["parity_max_abs_diff"] < 1e-12

    def test_trajectory_suite_engines_agree(self, smoke_report):
        trajectory = smoke_report["trajectory"]
        assert trajectory["batched_seconds"] > 0
        assert trajectory["looped_seconds"] > 0
        scale = max(trajectory["combined_two_sigma"] * 2, 0.05)
        assert abs(
            trajectory["batched_mean_fidelity"]
            - trajectory["looped_mean_fidelity"]
        ) < scale

    def test_workloads_are_physical(self, smoke_report):
        assert smoke_report["workloads"]
        for record in smoke_report["workloads"]:
            assert 0.0 <= record["mean_fidelity"] <= 1.0 + 1e-9
            assert record["seconds"] > 0

    def test_report_serializes_and_renders(self, smoke_report, tmp_path):
        path = write_report(smoke_report, tmp_path / "BENCH_noise.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        text = render_report(smoke_report)
        assert "density" in text and "speedup" in text


@pytest.mark.slow
class TestBenchDensity:
    def test_custom_workload_record(self):
        record = bench_density(num_controls=2, repeats=1)
        assert record["wires"] == 3
        assert record["hilbert_dim"] == 27
        assert record["parity_max_abs_diff"] < 1e-12


class TestVerifyBench:
    def test_smoke_report_shape(self, tmp_path):
        report = run_verify_bench(smoke=True)
        assert report["schema"] == VERIFY_SCHEMA
        assert report["smoke"] is True
        speedup = report["speedup"]
        assert speedup["batched_seconds"] > 0
        assert speedup["looped_seconds"] > 0
        assert speedup["decisions_agree"] is True
        widest = report["width14"]
        assert widest["completed"] is True
        assert widest["inputs"] == 2 ** widest["width"]
        path = write_report(report, tmp_path / "BENCH_verify.json")
        assert json.loads(path.read_text())["schema"] == VERIFY_SCHEMA
        text = render_verify_report(report)
        assert "speedup" in text and "exhaustive" in text

    def test_speedup_record_counts_every_input(self):
        record = bench_verify_speedup(num_controls=3, repeats=1)
        assert record["inputs"] == 2**4
        assert record["width"] == 4
        assert record["speedup"] > 0

    def test_width_record_covers_the_binary_space(self):
        record = bench_verify_width14(num_controls=5)
        assert record["width"] == 6
        assert record["inputs"] == 2**6
        assert record["seconds"] > 0


@pytest.fixture(scope="module")
def route_report():
    return run_route_bench(smoke=True)


@pytest.mark.slow
class TestRouteBench:
    def test_report_shape(self, route_report, tmp_path):
        assert route_report["schema"] == ROUTE_SCHEMA
        assert route_report["smoke"] is True
        assert {"records", "headline", "platform"} <= set(route_report)
        path = write_report(route_report, tmp_path / "BENCH_route.json")
        assert json.loads(path.read_text())["schema"] == ROUTE_SCHEMA
        text = render_route_report(route_report)
        assert "lookahead" in text and "greedy" in text

    def test_smoke_widths_are_a_prefix_of_full(self):
        # The regression gate joins smoke records against the committed
        # full report, so every smoke width must exist in the full sweep.
        assert ROUTE_SMOKE_WIDTHS == ROUTE_WIDTHS[: len(ROUTE_SMOKE_WIDTHS)]

    def test_records_are_complete_and_physical(self, route_report):
        for record in route_report["records"]:
            assert record["routed_depth"] >= record["logical_depth"]
            assert record["routed_two_qudit"] == (
                record["logical_two_qudit"] + record["swap_count"]
            )
            assert 0.0 < record["fidelity_proxy"] <= 1.0
            assert record["sites"] >= record["wires"]
            assert record["seconds"] > 0

    def test_all_to_all_is_free(self, route_report):
        for record in route_report["records"]:
            if record["topology_kind"] == "all_to_all":
                assert record["swap_count"] == 0
                assert record["depth_overhead"] == 1.0

    def test_acceptance_lookahead_beats_greedy_on_n8_tree(self, route_report):
        # The BENCH_route.json acceptance claim, recomputed fresh.
        wins = [
            entry
            for entry in route_report["headline"]["lookahead_vs_greedy"]
            if entry["construction"] == "qutrit_tree"
            and entry["num_controls"] >= 8
            and entry["topology_kind"] in ("line", "grid_2d")
        ]
        assert wins
        for entry in wins:
            assert entry["lookahead_swaps"] < entry["greedy_swaps"]

    def test_committed_report_matches_fresh_run(self, route_report):
        # The repo's committed BENCH_route.json must agree with a fresh
        # smoke run on the deterministic metrics (the CI gate's premise).
        from pathlib import Path

        committed_path = Path(__file__).parents[2] / "BENCH_route.json"
        committed = json.loads(committed_path.read_text())
        assert committed["schema"] == ROUTE_SCHEMA
        assert check_route_regression(committed, route_report) == []
        baseline = {
            route_record_key(r): r for r in committed["records"]
        }
        joined = 0
        for record in route_report["records"]:
            base = baseline.get(route_record_key(record))
            if base is None:
                continue
            joined += 1
            assert record["swap_count"] == base["swap_count"]
            assert record["routed_depth"] == base["routed_depth"]
        assert joined == len(route_report["records"])


class TestRouteCase:
    def test_single_case_record(self):
        record = bench_route_case("qutrit_tree", 4, "line", "lookahead")
        assert record["construction"] == "qutrit_tree"
        assert record["topology_kind"] == "line"
        assert record["router"] == "lookahead"
        assert record["wires"] == 5
        assert route_record_key(record) == (
            "qutrit_tree", 4, "line", "lookahead"
        )


class TestRouteRegressionCheck:
    def _report(self, swaps, depth):
        return {
            "records": [
                {
                    "construction": "qutrit_tree",
                    "num_controls": 8,
                    "topology_kind": "line",
                    "router": "lookahead",
                    "swap_count": swaps,
                    "routed_depth": depth,
                }
            ]
        }

    def test_identical_reports_pass(self):
        report = self._report(10, 40)
        assert check_route_regression(report, report) == []

    def test_within_factor_passes(self):
        assert check_route_regression(
            self._report(10, 40), self._report(29, 40)
        ) == []

    def test_degraded_metric_fails(self):
        failures = check_route_regression(
            self._report(10, 40), self._report(31, 40)
        )
        assert len(failures) == 1
        assert "swap_count" in failures[0]
        failures = check_route_regression(
            self._report(10, 40), self._report(10, 121)
        )
        assert "routed_depth" in failures[0]

    def test_zero_baseline_uses_absolute_floor(self):
        # committed 0 swaps: up to factor * 1 is tolerated.
        assert check_route_regression(
            self._report(0, 40), self._report(3, 40)
        ) == []
        assert check_route_regression(
            self._report(0, 40), self._report(4, 40)
        ) != []

    def test_unmatched_records_are_skipped(self):
        fresh = self._report(1000, 1000)
        fresh["records"][0]["num_controls"] = 99
        assert check_route_regression(self._report(10, 40), fresh) == []


@pytest.fixture(scope="module")
def state_report():
    return run_state_bench(smoke=True)


@pytest.mark.slow
class TestStateBench:
    def test_report_shape(self, state_report, tmp_path):
        assert state_report["schema"] == STATE_SCHEMA
        assert state_report["smoke"] is True
        cases = [record["case"] for record in state_report["records"]]
        assert cases == ["fastpath", "sampling", "dtype"]
        path = write_report(state_report, tmp_path / "BENCH_state.json")
        assert json.loads(path.read_text())["schema"] == STATE_SCHEMA
        text = render_state_report(state_report)
        assert "fastpath" in text and "invariants" in text

    def test_every_invariant_passes(self, state_report):
        for record in state_report["records"]:
            for name, value in record["invariants"].items():
                assert value is True, f"{record['case']}: {name}"

    def test_fastpath_record_is_exact(self, state_report):
        record = state_report["records"][0]
        assert record["parity_max_abs_diff"] == 0.0
        assert record["fast_seconds"] > 0
        assert record["dense_seconds"] > 0

    def test_sampling_record_is_deterministic(self, state_report):
        record = state_report["records"][1]
        assert record["chi_square_statistic"] <= (
            record["chi_square_critical"]
        )
        assert record["distinct_outcomes"] >= 2

    def test_record_keys_join_smoke_to_full(self, state_report):
        # The CI gate joins the smoke run against the committed full
        # report on the case name, so the names must be stable.
        keys = [state_record_key(r) for r in state_report["records"]]
        assert keys == ["fastpath", "sampling", "dtype"]


class TestStateRegressionCheck:
    def _report(self, invariants):
        return {
            "records": [
                {
                    "case": "fastpath",
                    "workload": "qutrit_tree(N=6)",
                    "invariants": invariants,
                }
            ]
        }

    def test_identical_reports_pass(self):
        report = self._report({"fastpath_parity_exact": True})
        assert check_state_regression(report, report) == []

    def test_failed_invariant_fails(self):
        failures = check_state_regression(
            self._report({"fastpath_parity_exact": True}),
            self._report({"fastpath_parity_exact": False}),
        )
        assert len(failures) == 1
        assert "fastpath_parity_exact" in failures[0]

    def test_dropped_invariant_fails(self):
        failures = check_state_regression(
            self._report({"fastpath_parity_exact": True}),
            self._report({}),
        )
        assert len(failures) == 1
        assert "missing" in failures[0]

    def test_unmatched_records_are_skipped(self):
        fresh = self._report({"fastpath_parity_exact": False})
        fresh["records"][0]["case"] = "unknown"
        committed = self._report({"fastpath_parity_exact": True})
        assert check_state_regression(committed, fresh) == []
