"""Tests for scaling-law fitting."""

import numpy as np
import pytest

from repro.analysis.scaling import (
    MODELS,
    ScalingFit,
    best_fit,
    crossover_point,
    fit_model,
)


class TestFitModel:
    def test_exact_linear_recovered(self):
        ns = [4, 8, 16, 32]
        fit = fit_model(ns, [5 * n for n in ns], "N")
        assert np.isclose(fit.coefficient, 5.0)
        assert fit.relative_rmse < 1e-12

    def test_exact_log_recovered(self):
        ns = [4, 8, 16, 32, 64]
        fit = fit_model(ns, [38 * np.log2(n) for n in ns], "log2(N)")
        assert np.isclose(fit.coefficient, 38.0)

    def test_exact_quadratic_recovered(self):
        ns = [4, 8, 16]
        fit = fit_model(ns, [2 * n * n for n in ns], "N^2")
        assert np.isclose(fit.coefficient, 2.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            fit_model([1, 2], [1, 2], "exp(N)")

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_model([4], [5], "N")

    def test_predict(self):
        fit = ScalingFit("N", 3.0, 0.0)
        assert fit.predict(10) == 30.0


class TestBestFit:
    def test_selects_linear_for_linear_data(self):
        ns = [8, 16, 32, 64, 128]
        fit = best_fit(ns, [6 * n + 1 for n in ns])
        assert fit.model == "N"

    def test_selects_log_for_log_data(self):
        ns = [8, 16, 32, 64, 128, 256]
        fit = best_fit(ns, [38 * np.log2(n) for n in ns])
        assert fit.model == "log2(N)"

    def test_selects_quadratic_for_quadratic_data(self):
        ns = [8, 16, 32, 64]
        fit = best_fit(ns, [0.5 * n * n + n for n in ns])
        assert fit.model == "N^2"

    def test_candidate_restriction(self):
        ns = [8, 16, 32]
        fit = best_fit(ns, [n**2 for n in ns], candidates=["N", "log2(N)"])
        assert fit.model in ("N", "log2(N)")

    def test_all_models_evaluate(self):
        ns = np.array([4.0, 8.0, 16.0])
        for basis in MODELS.values():
            assert basis(ns).shape == ns.shape


class TestCrossover:
    def test_crossover_found(self):
        quadratic = ScalingFit("N^2", 1.0, 0.0)
        linear = ScalingFit("N", 100.0, 0.0)
        crossing = crossover_point(quadratic, linear)
        assert crossing is not None
        assert quadratic.predict(crossing) > linear.predict(crossing)
        assert quadratic.predict(crossing // 2) <= linear.predict(
            crossing // 2
        )

    def test_no_crossover(self):
        log = ScalingFit("log2(N)", 1.0, 0.0)
        linear = ScalingFit("N", 100.0, 0.0)
        assert crossover_point(log, linear, n_max=1 << 16) is None
