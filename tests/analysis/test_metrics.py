"""Tests for circuit metrics collection."""

from repro.analysis.metrics import (
    CircuitMetrics,
    construction_metrics,
    sweep_constructions,
)


class TestConstructionMetrics:
    def test_fields_populated(self):
        metrics = construction_metrics("qutrit_tree", 6)
        assert metrics.construction == "qutrit_tree"
        assert metrics.num_controls == 6
        assert metrics.depth > 0
        assert metrics.two_qudit_gates > 0
        assert metrics.width == 7

    def test_gate_count_consistency(self):
        metrics = construction_metrics("qubit_one_dirty", 5)
        assert (
            metrics.total_gates
            == metrics.two_qudit_gates + metrics.single_qudit_gates
        )

    def test_ancilla_property(self):
        metrics = construction_metrics("he_tree", 4)
        assert metrics.ancilla == metrics.clean_ancilla == 3

    def test_borrowed_counted(self):
        metrics = construction_metrics("qubit_one_dirty", 4)
        assert metrics.borrowed_ancilla == 1
        assert metrics.ancilla == 1


class TestSweep:
    def test_default_sweep_covers_all_constructions(self):
        sweeps = sweep_constructions(control_counts=(2, 4))
        assert len(sweeps) == 6
        for metrics in sweeps.values():
            assert [m.num_controls for m in metrics] == [2, 4]

    def test_selected_names_only(self):
        sweeps = sweep_constructions(
            names=["qutrit_tree"], control_counts=(3, 5)
        )
        assert list(sweeps) == ["qutrit_tree"]

    def test_monotone_cost_in_n(self):
        sweeps = sweep_constructions(
            names=["qutrit_tree", "qubit_one_dirty"],
            control_counts=(4, 8, 16),
        )
        for metrics in sweeps.values():
            costs = [m.two_qudit_gates for m in metrics]
            assert costs == sorted(costs)
