"""Tests for the figure data generators."""


from repro.analysis.figures import (
    BENCHMARK_CIRCUITS,
    PAPER_COUNT_FITS,
    PAPER_DEPTH_FITS,
    PAPER_FIG11_PERCENT,
    fig9_depth_data,
    fig10_gate_count_data,
    fig11_fidelity_data,
    render_fidelity_bars,
    render_series_table,
)
from repro.noise.presets import DRESSED_QUTRIT, SC_T1_GATES


class TestFig9:
    def test_series_for_all_three_circuits(self):
        data = fig9_depth_data([4, 8])
        assert set(data) == {"QUBIT", "QUBIT+ANCILLA", "QUTRIT"}
        for series in data.values():
            assert len(series) == 2

    def test_qutrit_is_shallowest(self):
        data = fig9_depth_data([16])
        assert data["QUTRIT"][0] < data["QUBIT+ANCILLA"][0]
        assert data["QUTRIT"][0] < data["QUBIT"][0]

    def test_qubit_is_deepest(self):
        data = fig9_depth_data([16])
        assert data["QUBIT"][0] > data["QUBIT+ANCILLA"][0]

    def test_paper_fits_preserve_ordering(self):
        for n in (50, 100, 200):
            assert (
                PAPER_DEPTH_FITS["QUTRIT"](n)
                < PAPER_DEPTH_FITS["QUBIT+ANCILLA"](n)
                < PAPER_DEPTH_FITS["QUBIT"](n)
            )


class TestFig10:
    def test_qutrit_count_is_lowest(self):
        data = fig10_gate_count_data([16])
        assert data["QUTRIT"][0] < data["QUBIT+ANCILLA"][0]
        assert data["QUTRIT"][0] < data["QUBIT"][0]

    def test_paper_count_fit_ratio(self):
        # 397/48 ~ 8x: the paper's single-ancilla gain.
        ratio = PAPER_COUNT_FITS["QUBIT"](10) / PAPER_COUNT_FITS[
            "QUBIT+ANCILLA"
        ](10)
        assert 8 < ratio < 8.5


class TestFig11:
    def test_small_run_produces_points(self):
        points = fig11_fidelity_data(
            [("QUTRIT", DRESSED_QUTRIT), ("QUTRIT", SC_T1_GATES)],
            num_controls=4,
            trials=5,
            seed=11,
        )
        assert len(points) == 2
        for point in points:
            assert 0.0 <= point.estimate.mean_fidelity <= 1.0
            assert point.paper_percent is not None

    def test_paper_reference_complete(self):
        # 16 bars in Figure 11.
        assert len(PAPER_FIG11_PERCENT) == 16

    def test_benchmark_names_resolve(self):
        from repro.toffoli.registry import CONSTRUCTIONS

        for name in BENCHMARK_CIRCUITS.values():
            assert name in CONSTRUCTIONS


class TestRenderers:
    def test_series_table_includes_paper_column(self):
        data = {"QUTRIT": [10, 14]}
        text = render_series_table(
            [4, 8], data, PAPER_DEPTH_FITS, "depth"
        )
        assert "QUTRIT" in text
        assert "76" in text  # 38*log2(4)

    def test_fidelity_bars_render(self):
        points = fig11_fidelity_data(
            [("QUTRIT", DRESSED_QUTRIT)], num_controls=3, trials=3, seed=1
        )
        text = render_fidelity_bars(points)
        assert "DRESSED_QUTRIT" in text
        assert "#" in text
