"""Tests for the table renderers."""

from repro.analysis.tables import render_table1, render_table2, render_table3


class TestTable1:
    def test_mentions_every_construction(self):
        text = render_table1(control_counts=(4, 8, 16))
        for label in (
            "This work (QUTRIT)",
            "Gidney (QUBIT)",
            "He",
            "Wang",
            "Lanyon / Ralph",
        ):
            assert label in text

    def test_qutrit_tree_reports_log_depth(self):
        text = render_table1(control_counts=(8, 16, 32, 64))
        for line in text.splitlines():
            if "This work" in line:
                assert "log2(N)" in line
                return
        raise AssertionError("qutrit tree row missing")


class TestTable2:
    def test_all_models_listed(self):
        text = render_table2()
        for name in ("SC", "SC+T1", "SC+GATES", "SC+T1+GATES"):
            assert name in text

    def test_paper_values_present(self):
        text = render_table2()
        assert "1e-04" in text and "1e-03" in text
        assert "1 ms" in text and "10 ms" in text


class TestTable3:
    def test_all_models_listed(self):
        text = render_table3()
        for name in ("TI_QUBIT", "BARE_QUTRIT", "DRESSED_QUTRIT"):
            assert name in text

    def test_paper_values_present(self):
        text = render_table3()
        assert "6.4e-04" in text
        assert "1.3e-04" in text
        assert "4.3e-04" in text
        assert "3.1e-04" in text
        assert "200 us" in text
