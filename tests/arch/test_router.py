"""Tests for the lookahead (SABRE-style) router."""

from itertools import product

import pytest

from repro.arch.router import (
    ROUTERS,
    GreedyRouter,
    LookaheadRouter,
    RouterConfig,
    resolve_router,
)
from repro.arch.routing import route_circuit
from repro.arch.topology import (
    all_to_all,
    grid_2d,
    heavy_hex,
    line,
    random_regular,
    ring,
    sized_topology,
    star,
    tree,
)
from repro.circuits.circuit import Circuit
from repro.exceptions import SchedulingError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, X
from repro.gates.qutrit import X01, X02, X_PLUS_1
from repro.qudits import qubits, qutrits
from repro.sim.classical import ClassicalSimulator
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli

ZOO = (line, ring, star, tree, all_to_all)


def _check_semantics(circuit, wires, routed, levels=2):
    """Routed circuit must equal the original up to the placements."""
    sim = ClassicalSimulator()
    for values in product(range(levels), repeat=len(wires)):
        expected = sim.run(circuit, dict(zip(wires, values)))
        site_values = {site: 0 for site in routed.sites}
        for wire, value in zip(wires, values):
            site_values[routed.sites[routed.initial_placement[wire]]] = value
        out = sim.run(routed.circuit, site_values)
        for wire in wires:
            assert out[routed.output_site(wire)] == expected[wire], (
                routed.topology_name,
                values,
            )


def _ladder(wires):
    """A qutrit circuit coupling far-apart wires (forces SWAPs)."""
    gate = ControlledGate(X_PLUS_1, (3,), (1,))
    n = len(wires)
    ops = [gate.on(wires[k], wires[(k + n // 2) % n]) for k in range(n - 1)]
    return Circuit(ops)


class TestLookaheadCorrectness:
    @pytest.mark.parametrize("factory", ZOO, ids=lambda f: f.__name__)
    def test_semantics_preserved_on_every_zoo_kind(self, factory):
        wires = qutrits(5)
        circuit = _ladder(wires)
        routed = LookaheadRouter().route(circuit, factory(5), wires=wires)
        _check_semantics(circuit, wires, routed)

    def test_semantics_on_heavy_hex_and_random_regular(self):
        wires = qutrits(5)
        circuit = _ladder(wires)
        for topology in (heavy_hex(2, 2), random_regular(8, seed=4)):
            routed = LookaheadRouter().route(circuit, topology, wires=wires)
            _check_semantics(circuit, wires, routed)

    def test_every_routed_two_qudit_gate_is_on_an_edge(self):
        lowered = build_qutrit_tree(GeneralizedToffoli(8))
        topology = grid_2d(3, 3)
        routed = LookaheadRouter().route(lowered.circuit, topology)
        for op in routed.circuit.all_operations():
            if op.num_qudits == 2:
                assert topology.are_adjacent(
                    op.qudits[0].index, op.qudits[1].index
                )

    def test_placements_stay_bijective(self):
        wires = qutrits(6)
        routed = LookaheadRouter().route(
            _ladder(wires), ring(6), wires=wires
        )
        finals = list(routed.final_placement.values())
        assert len(set(finals)) == len(finals)

    def test_all_to_all_is_free(self):
        wires = qutrits(5)
        circuit = _ladder(wires)
        routed = LookaheadRouter().route(circuit, all_to_all(5), wires=wires)
        assert routed.swap_count == 0
        assert routed.circuit.num_operations == circuit.num_operations

    def test_deterministic(self):
        lowered = build_qutrit_tree(GeneralizedToffoli(6))
        a = LookaheadRouter().route(lowered.circuit, line(7))
        b = LookaheadRouter().route(lowered.circuit, line(7))
        assert a.circuit == b.circuit
        assert a.initial_placement == b.initial_placement

    def test_empty_circuit(self):
        routed = LookaheadRouter().route(Circuit(), line(3))
        assert routed.swap_count == 0
        assert routed.depth == 0


class TestLookaheadQuality:
    @pytest.mark.parametrize("n", [8, 12])
    def test_beats_or_ties_greedy_on_the_tree(self, n):
        # The acceptance trend of BENCH_route.json, asserted in-tree.
        lowered = build_qutrit_tree(GeneralizedToffoli(n))
        for topology in (line(n + 1), sized_topology("grid_2d", n + 1)):
            greedy = route_circuit(lowered.circuit, topology)
            smart = LookaheadRouter().route(lowered.circuit, topology)
            assert smart.swap_count < greedy.swap_count

    def test_placement_search_helps_or_ties(self):
        lowered = build_qutrit_tree(GeneralizedToffoli(8))
        no_search = LookaheadRouter(
            RouterConfig(placement_trials=0)
        ).route(lowered.circuit, line(9))
        searched = LookaheadRouter(
            RouterConfig(placement_trials=8)
        ).route(lowered.circuit, line(9))
        assert searched.swap_count <= no_search.swap_count


class TestWideGates:
    def test_undecomposed_tree_routes_without_raising(self):
        # The 3-wire |2>-controlled gates lower in place (the greedy
        # router raises on the same input).
        built = build_qutrit_tree(GeneralizedToffoli(4), decompose=False)
        with pytest.raises(SchedulingError):
            route_circuit(built.circuit, line(5))
        routed = LookaheadRouter().route(built.circuit, line(5))
        assert routed.circuit.max_gate_width() <= 2
        assert routed.swap_count > 0

    def test_lowering_matches_decomposed_semantics(self):
        from repro.sim.statevector import StateVectorSimulator

        built = build_qutrit_tree(GeneralizedToffoli(3), decompose=False)
        routed = LookaheadRouter().route(built.circuit, line(4))
        sim = StateVectorSimulator()
        values = {site: 0 for site in routed.sites}
        for wire in built.controls:
            values[routed.sites[routed.initial_placement[wire]]] = 1
        state = sim.run_basis(
            routed.circuit, routed.sites, [values[s] for s in routed.sites]
        )
        expected = [values[s] for s in routed.sites]
        expected[routed.sites.index(routed.output_site(built.target))] ^= 1
        assert state.probability_of(expected) == pytest.approx(1.0, abs=1e-6)


class TestBarriers:
    def _barriered(self):
        wires = qutrits(4)
        gate = ControlledGate(X01, (3,), (1,))
        circuit = Circuit([gate.on(wires[0], wires[1])])
        circuit.barrier()
        circuit.append([gate.on(wires[2], wires[3])])
        return circuit, wires

    @pytest.mark.parametrize("router", ["greedy", "lookahead"])
    def test_barrier_floors_survive_routing(self, router):
        # Regression: v1 dropped barrier floors entirely, letting
        # disjoint-wire phases collapse into one moment.
        circuit, wires = self._barriered()
        routed = resolve_router(router).route(
            circuit, line(4), wires=wires
        )
        assert routed.swap_count == 0
        assert routed.circuit.barrier_floors == (1,)
        assert routed.circuit.depth == 2  # without the fix: depth 1

    @pytest.mark.parametrize("router", ["greedy", "lookahead"])
    def test_composition_matches_circuit_add_contract(self, router):
        circuit, wires = self._barriered()
        routed = resolve_router(router).route(
            circuit, line(4), wires=wires
        )
        # Appending to the routed circuit respects the replayed floor,
        # exactly like Circuit.__add__ replay does on the original.
        follow = X_PLUS_1.on(routed.sites[0])
        depth_before = routed.circuit.depth
        routed.circuit.append(follow)
        assert routed.circuit.depth == depth_before  # slot under floor 2 ok

    def test_lookahead_does_not_reorder_across_barriers(self):
        wires = qutrits(3)
        gate = ControlledGate(X02, (3,), (2,))
        circuit = Circuit([gate.on(wires[0], wires[2])])
        circuit.barrier()
        circuit.append([gate.on(wires[1], wires[2])])
        routed = LookaheadRouter().route(circuit, line(3), wires=wires)
        _check_semantics(circuit, wires, routed, levels=3)
        assert routed.circuit.barrier_floors


class TestConfigAndDispatch:
    def test_resolve_router_names(self):
        assert isinstance(resolve_router("lookahead"), LookaheadRouter)
        assert isinstance(resolve_router("greedy"), GreedyRouter)
        assert isinstance(resolve_router(None), LookaheadRouter)
        assert set(ROUTERS) == {"lookahead", "greedy"}

    def test_resolve_router_config_and_instance(self):
        config = RouterConfig(lookahead=2)
        router = resolve_router(config)
        assert isinstance(router, LookaheadRouter)
        assert router.config.lookahead == 2
        assert resolve_router(router) is router

    def test_unknown_router_rejected(self):
        with pytest.raises(KeyError, match="unknown router"):
            resolve_router("quantum-annealer")

    def test_zero_lookahead_still_routes_correctly(self):
        wires = qutrits(5)
        circuit = _ladder(wires)
        routed = LookaheadRouter(
            RouterConfig(lookahead=0, placement_trials=0)
        ).route(circuit, line(5), wires=wires)
        _check_semantics(circuit, wires, routed)

    def test_tiny_stall_budget_forces_greedy_fallback(self):
        # max_stalled_swaps=1 fires the shortest-path fallback on every
        # blocked gate; routing must stay correct.
        wires = qutrits(5)
        circuit = _ladder(wires)
        routed = LookaheadRouter(
            RouterConfig(max_stalled_swaps=1, placement_trials=0)
        ).route(circuit, line(5), wires=wires)
        _check_semantics(circuit, wires, routed)

    def test_stall_budget_auto_scales(self):
        config = RouterConfig()
        assert config.stall_budget(line(100)) == 400
        assert config.stall_budget(line(2)) == 16
        assert RouterConfig(max_stalled_swaps=7).stall_budget(line(9)) == 7

    def test_explicit_placement_is_respected(self):
        wires = qubits(3)
        circuit = Circuit([CNOT.on(wires[0], wires[2])])
        placement = {wires[0]: 2, wires[1]: 1, wires[2]: 0}
        routed = LookaheadRouter().route(
            circuit, line(3), placement=placement, wires=wires
        )
        assert routed.initial_placement == placement

    def test_invalid_placement_rejected(self):
        wires = qubits(2)
        circuit = Circuit([CNOT.on(*wires)])
        with pytest.raises(SchedulingError, match="two wires"):
            LookaheadRouter().route(
                circuit, line(2),
                placement={wires[0]: 0, wires[1]: 0}, wires=wires,
            )
        with pytest.raises(SchedulingError, match="outside"):
            LookaheadRouter().route(
                circuit, line(2),
                placement={wires[0]: 0, wires[1]: 5}, wires=wires,
            )
        with pytest.raises(SchedulingError, match="missing"):
            LookaheadRouter().route(
                circuit, line(2),
                placement={wires[0]: 0}, wires=wires,
            )

    def test_shared_validation_matches_greedy(self):
        from repro.qudits import Qudit

        a, b = Qudit(0, 2), Qudit(1, 3)
        mixed = Circuit([ControlledGate(X_PLUS_1, (2,), (1,)).on(a, b)])
        with pytest.raises(SchedulingError, match="homogeneous"):
            LookaheadRouter().route(mixed, line(2))
        wide = Circuit([CNOT.on(*qubits(2))])
        with pytest.raises(SchedulingError, match="sites for"):
            LookaheadRouter().route(wide, line(1))

    def test_single_qudit_gates_follow_placement(self):
        wires = qubits(3)
        circuit = Circuit(
            [CNOT.on(wires[0], wires[2]), X.on(wires[0])]
        )
        routed = LookaheadRouter().route(circuit, line(3), wires=wires)
        _check_semantics(circuit, wires, routed)
