"""Tests for routing-aware cost metrics."""

import pytest

from repro.arch.metrics import (
    estimate_routed_fidelity,
    gate_error_proxy,
    routing_metrics,
)
from repro.arch.router import LookaheadRouter
from repro.arch.routing import route_circuit
from repro.arch.topology import all_to_all, line
from repro.noise.presets import SC
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli


@pytest.fixture(scope="module")
def tree6():
    return build_qutrit_tree(GeneralizedToffoli(6)).circuit


class TestRoutingMetrics:
    def test_structural_numbers(self, tree6):
        routed = route_circuit(tree6, line(7))
        metrics = routing_metrics(tree6, routed)
        assert metrics.topology == "line(7)"
        assert metrics.router == "greedy"
        assert metrics.swap_count == routed.swap_count
        assert metrics.logical_depth == tree6.depth
        assert metrics.routed_depth == routed.depth
        assert metrics.routed_two_qudit == (
            metrics.logical_two_qudit + metrics.swap_count
        )
        assert metrics.depth_overhead == routed.depth / tree6.depth
        assert metrics.swap_overhead == (
            routed.swap_count / tree6.two_qudit_gate_count
        )
        assert metrics.fidelity_proxy is None
        assert metrics.fidelity_cost is None

    def test_free_routing_has_unit_overheads(self, tree6):
        routed = LookaheadRouter().route(tree6, all_to_all(7))
        metrics = routing_metrics(tree6, routed, SC)
        assert metrics.swap_count == 0
        assert metrics.depth_overhead == 1.0
        assert metrics.swap_overhead == 0.0
        assert metrics.fidelity_cost == pytest.approx(0.0)

    def test_routing_costs_fidelity(self, tree6):
        routed = route_circuit(tree6, line(7))
        metrics = routing_metrics(tree6, routed, SC)
        assert 0.0 < metrics.fidelity_proxy < metrics.logical_fidelity_proxy
        assert 0.0 < metrics.fidelity_cost < 1.0

    def test_to_dict_is_json_clean(self, tree6):
        import json

        routed = route_circuit(tree6, line(7))
        record = routing_metrics(tree6, routed, SC).to_dict()
        assert json.loads(json.dumps(record)) == record
        assert record["router"] == "greedy"

    def test_empty_circuit_edge_cases(self):
        from repro.circuits.circuit import Circuit

        empty = Circuit()
        routed = route_circuit(empty, line(2))
        metrics = routing_metrics(empty, routed, SC)
        assert metrics.depth_overhead == 1.0
        assert metrics.swap_overhead == 0.0
        assert metrics.fidelity_proxy == 1.0


class TestGateErrorProxy:
    def test_matches_manual_product(self, tree6):
        manual = 1.0
        for op in tree6.all_operations():
            dims = tuple(w.dimension for w in op.qudits)
            manual *= 1.0 - SC.total_gate_error(dims)
        assert gate_error_proxy(tree6, SC) == pytest.approx(manual)

    def test_more_gates_less_fidelity(self, tree6):
        routed = route_circuit(tree6, line(7))
        assert gate_error_proxy(routed.circuit, SC) < gate_error_proxy(
            tree6, SC
        )


class TestTrajectoryEstimate:
    def test_routed_estimate_is_physical_and_seeded(self, tree6):
        routed = route_circuit(tree6, line(7))
        estimate = estimate_routed_fidelity(
            routed, SC, trials=20, seed=11
        )
        again = estimate_routed_fidelity(
            routed, SC, trials=20, seed=11
        )
        assert 0.0 <= estimate.mean_fidelity <= 1.0 + 1e-9
        assert estimate.mean_fidelity == again.mean_fidelity

    def test_constrained_device_loses_fidelity(self, tree6):
        free = LookaheadRouter().route(tree6, all_to_all(7))
        constrained = route_circuit(tree6, line(7))
        f_free = estimate_routed_fidelity(
            free, SC, trials=60, seed=3
        ).mean_fidelity
        f_line = estimate_routed_fidelity(
            constrained, SC, trials=60, seed=3
        ).mean_fidelity
        assert f_line < f_free
