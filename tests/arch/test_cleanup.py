"""Tests for post-routing cleanup (arch.cleanup)."""

import numpy as np

from repro.arch import cleanup_routed, count_swaps, resolve_router
from repro.arch.topology import sized_topology
from repro.optimize import RewriteEngine, circuits_equivalent
from repro.sim.classical_batch import BatchedClassicalSimulator
from repro.toffoli.registry import construction_circuit


def _routed(construction="he_tree", controls=3, kind="line"):
    circuit = construction_circuit(construction, controls)
    wires = circuit.all_qudits()
    topology = sized_topology(kind, len(wires))
    return resolve_router("lookahead").route(circuit, topology, wires=wires)


class TestCountSwaps:
    def test_counts_router_inserted_swaps(self):
        routed = _routed()
        assert count_swaps(routed.circuit) == routed.swap_count


class TestCleanupRouted:
    def test_cleanup_shrinks_and_preserves_action(self):
        routed = _routed()
        cleaned, report = cleanup_routed(routed)
        assert cleaned.circuit.num_operations < routed.circuit.num_operations
        assert report.gates_removed > 0
        assert circuits_equivalent(
            routed.circuit, cleaned.circuit, wires=routed.sites
        )

    def test_placements_are_untouched(self):
        routed = _routed()
        cleaned, _ = cleanup_routed(routed)
        assert cleaned.initial_placement == routed.initial_placement
        assert cleaned.final_placement == routed.final_placement
        assert cleaned.sites == routed.sites
        assert cleaned.topology_name == routed.topology_name

    def test_swap_count_recounted_from_circuit(self):
        routed = _routed()
        cleaned, _ = cleanup_routed(routed)
        assert cleaned.swap_count == count_swaps(cleaned.circuit)

    def test_noop_returns_original_record(self):
        # qutrit_tree routes tightly: if nothing improves, the same
        # RoutedCircuit object comes back.
        routed = _routed("qutrit_tree", 3, "all_to_all")
        cleaned, report = cleanup_routed(routed)
        if report.gates_removed == 0 and report.depth_removed == 0:
            assert cleaned is routed

    def test_custom_engine_spec_accepted(self):
        routed = _routed()
        cleaned, report = cleanup_routed(routed, engine="cancel-inverses")
        assert report.gates_removed >= 0
        assert circuits_equivalent(
            routed.circuit, cleaned.circuit, wires=routed.sites
        )

    def test_classical_routed_circuit_keeps_permutation(self):
        # A width-2 classical circuit stays classical through routing,
        # so the full-action permutation oracle applies to its routed +
        # cleaned form.
        from repro.circuits.circuit import Circuit
        from repro.gates.controlled import ControlledGate
        from repro.gates.qutrit import X01, X_MINUS_1, X_PLUS_1
        from repro.qudits import qutrits

        wires = qutrits(4)
        circuit = Circuit()
        circuit.append(ControlledGate(X_PLUS_1, (3,), (1,)).on(*wires[:2]))
        circuit.append(ControlledGate(X01, (3,), (2,)).on(*wires[1:3]))
        circuit.append(X_PLUS_1.on(wires[3]))
        circuit.append(X_MINUS_1.on(wires[3]))
        circuit.append(
            ControlledGate(X_PLUS_1, (3,), (1,)).on(*wires[2:4])
        )
        topology = sized_topology("line", len(wires))
        routed = resolve_router("lookahead").route(
            circuit, topology, wires=wires
        )
        cleaned, _ = cleanup_routed(routed, engine=RewriteEngine())
        sim = BatchedClassicalSimulator()
        assert np.array_equal(
            sim.permutation_vector(routed.circuit, routed.sites),
            sim.permutation_vector(cleaned.circuit, cleaned.sites),
        )
