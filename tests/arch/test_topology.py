"""Tests for device coupling graphs and the topology zoo."""

import pytest

from repro.arch.topology import (
    TOPOLOGY_KINDS,
    CouplingGraph,
    TopologySpec,
    all_to_all,
    grid_2d,
    heavy_hex,
    line,
    random_regular,
    ring,
    sized_topology,
    star,
    tree,
)
from repro.exceptions import SerializationError


class TestConstruction:
    def test_all_to_all_everything_adjacent(self):
        graph = all_to_all(5)
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert graph.are_adjacent(a, b)

    def test_line_adjacency(self):
        graph = line(4)
        assert graph.are_adjacent(0, 1)
        assert not graph.are_adjacent(0, 2)

    def test_grid_adjacency(self):
        graph = grid_2d(2, 3)
        assert graph.size == 6
        assert graph.are_adjacent(0, 1)   # same row
        assert graph.are_adjacent(0, 3)   # same column
        assert not graph.are_adjacent(0, 4)  # diagonal

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(3, [(1, 1)], "bad")

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(3, [(0, 3)], "bad")


class TestMetrics:
    def test_line_distance(self):
        graph = line(6)
        assert graph.distance(0, 5) == 5
        assert graph.distance(2, 2) == 0

    def test_grid_distance_is_manhattan(self):
        graph = grid_2d(4, 4)
        # site 0 = (0,0), site 15 = (3,3).
        assert graph.distance(0, 15) == 6

    def test_diameters(self):
        assert all_to_all(7).diameter() == 1
        assert line(7).diameter() == 6
        assert grid_2d(3, 3).diameter() == 4

    def test_connectivity(self):
        assert line(5).is_connected()
        disconnected = CouplingGraph(4, [(0, 1), (2, 3)], "split")
        assert not disconnected.is_connected()

    def test_shortest_path_step_makes_progress(self):
        graph = grid_2d(3, 3)
        here, target = 0, 8
        hops = 0
        while here != target:
            nxt = graph.shortest_path_step(here, target)
            assert graph.distance(nxt, target) == graph.distance(here, target) - 1
            here = nxt
            hops += 1
        assert hops == graph.distance(0, 8)

    def test_shortest_path_step_rejects_same_site(self):
        with pytest.raises(ValueError):
            line(3).shortest_path_step(1, 1)

    def test_distance_table_is_cached_and_consistent(self):
        graph = grid_2d(3, 3)
        table = graph.distance_table()
        assert table is graph.distance_table()
        for a in range(graph.size):
            for b in range(graph.size):
                assert table[a][b] == graph.distance(a, b)


class TestZoo:
    def test_ring_wraps_around(self):
        graph = ring(6)
        assert graph.are_adjacent(0, 5)
        assert graph.distance(0, 5) == 1
        assert graph.diameter() == 3

    def test_tiny_rings_are_simple_graphs(self):
        assert ring(1).size == 1
        assert ring(2).are_adjacent(0, 1)
        assert ring(2).degree(0) == 1  # no doubled edge

    def test_star_hub_touches_everything(self):
        graph = star(7)
        assert all(graph.are_adjacent(0, leaf) for leaf in range(1, 7))
        assert graph.diameter() == 2
        assert graph.degree(0) == 6

    def test_tree_parent_structure(self):
        graph = tree(7)  # complete binary tree
        assert graph.are_adjacent(1, 0) and graph.are_adjacent(2, 0)
        assert graph.are_adjacent(3, 1) and graph.are_adjacent(6, 2)
        assert not graph.are_adjacent(3, 2)

    def test_tree_branching_factor(self):
        graph = tree(7, branching=3)
        assert graph.degree(0) == 3
        with pytest.raises(ValueError):
            tree(4, branching=0)

    def test_heavy_hex_degree_bound(self):
        graph = heavy_hex(3, 3)
        assert graph.is_connected()
        assert max(graph.degree(s) for s in range(graph.size)) <= 3
        # Subdivision sites exist: more sites than the vertex grid.
        assert graph.size > 9

    def test_heavy_hex_rejects_empty(self):
        with pytest.raises(ValueError):
            heavy_hex(0, 3)

    def test_heavy_hex_degenerate_shapes_stay_connected(self):
        # Regression: the brick-wall parity used to isolate vertices in
        # single-column lattices (heavy_hex(3, 1) had no edge to row 2).
        for rows, cols in ((3, 1), (5, 1), (1, 4), (4, 2)):
            assert heavy_hex(rows, cols).is_connected(), (rows, cols)

    def test_random_regular_is_regular_connected_deterministic(self):
        graph = random_regular(12, degree=3, seed=5)
        assert graph.is_connected()
        assert all(graph.degree(s) == 3 for s in range(12))
        again = random_regular(12, degree=3, seed=5)
        assert graph.edges() == again.edges()
        assert random_regular(12, degree=3, seed=6).edges() != graph.edges()

    def test_random_regular_odd_product_lowers_degree(self):
        # 5 sites x degree 3 is odd; the factory drops to degree 2.
        graph = random_regular(5, degree=3, seed=1)
        assert all(graph.degree(s) == 2 for s in range(5))

    def test_random_regular_clamps_degree(self):
        graph = random_regular(4, degree=9, seed=1)
        assert all(graph.degree(s) == 3 for s in range(4))

    def test_factories_are_memoised(self):
        assert line(9) is line(9)
        assert heavy_hex(2, 2) is heavy_hex(2, 2)

    def test_edges_listing(self):
        assert line(3).edges() == [(0, 1), (1, 2)]


class TestTopologySpec:
    def test_every_factory_records_a_buildable_spec(self):
        graphs = [
            all_to_all(5), line(5), ring(5), star(5), tree(5),
            grid_2d(2, 3), heavy_hex(2, 2), random_regular(8, seed=3),
        ]
        for graph in graphs:
            spec = graph.spec
            assert spec is not None and spec.kind in TOPOLOGY_KINDS
            rebuilt = spec.build()
            assert rebuilt.size == graph.size
            assert rebuilt.edges() == graph.edges()

    def test_json_round_trip(self):
        spec = grid_2d(3, 4).spec
        assert TopologySpec.from_json(spec.to_json()) == spec
        assert TopologySpec.from_dict(spec.to_dict()) == spec

    def test_specs_are_hashable_values(self):
        a = TopologySpec("line", {"size": 4})
        b = TopologySpec("line", {"size": 4})
        assert a == b and hash(a) == hash(b)
        assert a != TopologySpec("line", {"size": 5})

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError, match="unknown topology"):
            TopologySpec("moebius", {"size": 4}).build()

    def test_bad_params_rejected(self):
        with pytest.raises(SerializationError, match="bad parameters"):
            TopologySpec("line", {"rows": 4}).build()

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            TopologySpec.from_json("not json")
        with pytest.raises(SerializationError):
            TopologySpec.from_json("[1, 2]")
        with pytest.raises(SerializationError):
            TopologySpec.from_dict({"params": {}})


class TestSizedTopology:
    @pytest.mark.parametrize("kind", sorted(TOPOLOGY_KINDS))
    def test_every_kind_covers_the_requested_width(self, kind):
        for width in (1, 2, 5, 9, 14):
            graph = sized_topology(kind, width)
            assert graph.size >= width
            assert graph.is_connected()

    def test_grid_is_near_square(self):
        graph = sized_topology("grid_2d", 12)
        assert graph.size in (12, 15)  # 3x4 or 3x5 depending on isqrt

    def test_exact_kinds_are_exactly_sized(self):
        for kind in ("line", "ring", "star", "tree", "all_to_all"):
            assert sized_topology(kind, 7).size == 7

    def test_random_regular_uses_seed(self):
        a = sized_topology("random_regular", 10, seed=1)
        b = sized_topology("random_regular", 10, seed=2)
        assert a.edges() != b.edges()

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown topology kind"):
            sized_topology("torus", 5)
