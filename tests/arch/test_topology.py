"""Tests for device coupling graphs."""

import pytest

from repro.arch.topology import CouplingGraph, all_to_all, grid_2d, line


class TestConstruction:
    def test_all_to_all_everything_adjacent(self):
        graph = all_to_all(5)
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert graph.are_adjacent(a, b)

    def test_line_adjacency(self):
        graph = line(4)
        assert graph.are_adjacent(0, 1)
        assert not graph.are_adjacent(0, 2)

    def test_grid_adjacency(self):
        graph = grid_2d(2, 3)
        assert graph.size == 6
        assert graph.are_adjacent(0, 1)   # same row
        assert graph.are_adjacent(0, 3)   # same column
        assert not graph.are_adjacent(0, 4)  # diagonal

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(3, [(1, 1)], "bad")

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            CouplingGraph(3, [(0, 3)], "bad")


class TestMetrics:
    def test_line_distance(self):
        graph = line(6)
        assert graph.distance(0, 5) == 5
        assert graph.distance(2, 2) == 0

    def test_grid_distance_is_manhattan(self):
        graph = grid_2d(4, 4)
        # site 0 = (0,0), site 15 = (3,3).
        assert graph.distance(0, 15) == 6

    def test_diameters(self):
        assert all_to_all(7).diameter() == 1
        assert line(7).diameter() == 6
        assert grid_2d(3, 3).diameter() == 4

    def test_connectivity(self):
        assert line(5).is_connected()
        disconnected = CouplingGraph(4, [(0, 1), (2, 3)], "split")
        assert not disconnected.is_connected()

    def test_shortest_path_step_makes_progress(self):
        graph = grid_2d(3, 3)
        here, target = 0, 8
        hops = 0
        while here != target:
            nxt = graph.shortest_path_step(here, target)
            assert graph.distance(nxt, target) == graph.distance(here, target) - 1
            here = nxt
            hops += 1
        assert hops == graph.distance(0, 8)

    def test_shortest_path_step_rejects_same_site(self):
        with pytest.raises(ValueError):
            line(3).shortest_path_step(1, 1)
