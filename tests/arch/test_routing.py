"""Tests for the SWAP router (Sec. 9's connectivity discussion)."""

from itertools import product

import pytest

from repro.arch.routing import route_circuit, swap_gate
from repro.arch.topology import all_to_all, grid_2d, line
from repro.circuits.circuit import Circuit
from repro.exceptions import SchedulingError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.qudits import qubits, qutrits
from repro.sim.classical import ClassicalSimulator
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli


class TestSwapGate:
    def test_qubit_swap(self):
        gate = swap_gate(2)
        assert gate.classical_action((1, 0)) == (0, 1)

    def test_qutrit_swap(self):
        gate = swap_gate(3)
        for a in range(3):
            for b in range(3):
                assert gate.classical_action((a, b)) == (b, a)

    def test_swap_is_involution(self):
        gate = swap_gate(3)
        for a in range(3):
            for b in range(3):
                assert gate.classical_action(
                    gate.classical_action((a, b))
                ) == (a, b)


def _route_and_check(circuit, wires, topology):
    """Route and verify outputs match the original on all binary inputs."""
    routed = route_circuit(circuit, topology, wires=wires)
    sim = ClassicalSimulator()
    for values in product([0, 1], repeat=len(wires)):
        expected = sim.run(circuit, dict(zip(wires, values)))
        # Run the routed circuit: site wires, initial placement order.
        site_values = {site: 0 for site in routed.sites}
        for wire, value in zip(wires, values):
            site_values[routed.sites[routed.initial_placement[wire]]] = value
        out = sim.run(routed.circuit, site_values)
        for wire in wires:
            assert out[routed.output_site(wire)] == expected[wire], (
                topology.name,
                values,
            )
    return routed


class TestRouting:
    def test_all_to_all_inserts_no_swaps(self):
        wires = qutrits(4)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(wires[0], wires[3]),
                ControlledGate(X01, (3,), (2,)).on(wires[3], wires[1]),
            ]
        )
        routed = _route_and_check(circuit, wires, all_to_all(4))
        assert routed.swap_count == 0
        assert routed.depth == circuit.depth

    def test_line_routing_correct(self):
        wires = qutrits(4)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(wires[0], wires[3]),
                ControlledGate(X01, (3,), (2,)).on(wires[3], wires[0]),
            ]
        )
        routed = _route_and_check(circuit, wires, line(4))
        assert routed.swap_count > 0

    def test_grid_routing_correct(self):
        wires = qutrits(6)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(wires[0], wires[5]),
                ControlledGate(X01, (3,), (2,)).on(wires[5], wires[2]),
                X_PLUS_1.on(wires[4]),
            ]
        )
        _route_and_check(circuit, wires, grid_2d(2, 3))

    def test_routed_tree_still_computes_toffoli(self):
        # The undecomposed tree has 3-wire gates: route the decomposed one.
        # Decomposed gates are non-classical, so check a statevector point.
        lowered = build_qutrit_tree(GeneralizedToffoli(5))
        routed = route_circuit(lowered.circuit, line(6))
        from repro.sim.statevector import StateVectorSimulator

        sim = StateVectorSimulator()
        values = {site: 0 for site in routed.sites}
        for wire in lowered.controls:
            values[routed.sites[routed.initial_placement[wire]]] = 1
        state = sim.run_basis(
            routed.circuit, routed.sites, [values[s] for s in routed.sites]
        )
        expected = [values[s] for s in routed.sites]
        expected[
            routed.sites.index(routed.output_site(lowered.target))
        ] ^= 1
        assert state.probability_of(expected) == pytest.approx(1.0, abs=1e-6)

    def test_single_qudit_gates_follow_placement(self):
        wires = qubits(3)
        circuit = Circuit(
            [CNOT.on(wires[0], wires[2]), X.on(wires[0]), H.on(wires[2])]
        )
        routed = route_circuit(circuit, line(3))
        assert routed.circuit.num_operations >= circuit.num_operations

    def test_mixed_dimensions_rejected(self):
        from repro.qudits import Qudit

        a, b = Qudit(0, 2), Qudit(1, 3)
        circuit = Circuit(
            [ControlledGate(X_PLUS_1, (2,), (1,)).on(a, b)]
        )
        with pytest.raises(SchedulingError):
            route_circuit(circuit, line(2))

    def test_too_small_device_rejected(self):
        wires = qubits(3)
        circuit = Circuit([CNOT.on(wires[0], wires[2])])
        with pytest.raises(SchedulingError):
            route_circuit(circuit, line(2), wires=wires)

    def test_wire_list_must_cover_circuit(self):
        wires = qubits(3)
        circuit = Circuit([CNOT.on(wires[0], wires[2])])
        with pytest.raises(SchedulingError):
            route_circuit(circuit, line(3), wires=wires[:1])

    def test_wide_gates_rejected(self):
        wires = qubits(3)
        gate = ControlledGate(X, (2, 2))
        with pytest.raises(SchedulingError):
            route_circuit(Circuit([gate.on(*wires)]), line(3))

    def test_empty_circuit(self):
        routed = route_circuit(Circuit(), line(2))
        assert routed.swap_count == 0
        assert routed.depth == 0


class TestBarrierRegression:
    """route_circuit dropped barrier floors before routing v2."""

    def test_barrier_floors_preserved(self):
        wires = qutrits(4)
        gate = ControlledGate(X01, (3,), (1,))
        circuit = Circuit([gate.on(wires[0], wires[1])])
        circuit.barrier()
        circuit.append([gate.on(wires[2], wires[3])])
        routed = route_circuit(circuit, line(4))
        # No SWAPs needed, so the routed circuit must keep the two
        # phases separated exactly like Circuit.__add__ replay would:
        # without the fix both disjoint gates collapsed into moment 0.
        assert routed.swap_count == 0
        assert routed.circuit.barrier_floors == (1,)
        assert routed.circuit.depth == 2

    def test_trailing_barrier_survives(self):
        wires = qutrits(2)
        circuit = Circuit([X_PLUS_1.on(wires[0])])
        circuit.barrier()
        routed = route_circuit(circuit, line(2))
        assert routed.circuit.barrier_floors == (1,)
        # Later appends schedule at or after the replayed floor.
        routed.circuit.append(X_PLUS_1.on(routed.sites[1]))
        assert routed.circuit.depth == 2

    def test_barriers_interleave_with_swaps(self):
        wires = qutrits(3)
        gate = ControlledGate(X01, (3,), (1,))
        circuit = Circuit([gate.on(wires[0], wires[2])])
        circuit.barrier()
        circuit.append([gate.on(wires[0], wires[2])])
        routed = route_circuit(circuit, line(3), wires=wires)
        assert routed.swap_count > 0
        assert len(routed.circuit.barrier_floors) == 1
        # The floor sits after the first routed phase, not at index 1.
        floor = routed.circuit.barrier_floors[0]
        ops_before = sum(
            len(m.operations) for m in routed.circuit.moments[:floor]
        )
        assert ops_before >= 2  # first gate plus its swap(s)


class TestSection9Asymptotics:
    """The discussion the package exists for: topology inflates depth."""

    def test_constrained_topologies_cost_more_depth(self):
        lowered = build_qutrit_tree(GeneralizedToffoli(8))
        n_wires = 9
        on_full = route_circuit(lowered.circuit, all_to_all(n_wires))
        on_grid = route_circuit(lowered.circuit, grid_2d(3, 3))
        on_line = route_circuit(lowered.circuit, line(n_wires))
        assert on_full.depth <= on_grid.depth <= on_line.depth
        assert on_full.swap_count == 0 < on_grid.swap_count

    def test_grid_beats_line_asymptotically(self):
        # sqrt(N) vs N distances: the grid's swap overhead grows slower.
        def swaps(topology_factory, n_controls, sites):
            lowered = build_qutrit_tree(GeneralizedToffoli(n_controls))
            return route_circuit(
                lowered.circuit, topology_factory(sites)
            ).swap_count

        line_growth = swaps(line, 24, 25) / max(1, swaps(line, 8, 9))
        grid_growth = swaps(lambda n: grid_2d(5, 5), 24, 25) / max(
            1, swaps(lambda n: grid_2d(3, 3), 8, 9)
        )
        assert grid_growth < line_growth
