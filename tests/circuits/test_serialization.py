"""Round-trip and structural-identity tests for the circuit IR."""

import pytest

from repro.circuits import Circuit, GateOperation, Moment
from repro.exceptions import SerializationError
from repro.gates import CNOT, H, X, X_PLUS_1, controlled_power_of_x
from repro.qudits import Qudit, qubits, qutrits
from repro.toffoli.registry import CONSTRUCTIONS, build_toffoli


def _sample_circuit() -> Circuit:
    a, b = qubits(2)
    t = Qudit(2, 3)
    circuit = Circuit([H.on(a), CNOT.on(a, b)])
    circuit.barrier()
    circuit.append([X_PLUS_1.on(t), controlled_power_of_x(0.5).on(a, b)])
    return circuit


class TestOperationSerialization:
    def test_round_trip(self):
        a, b = qubits(2)
        op = CNOT.on(a, b)
        rebuilt = GateOperation.from_dict(op.to_dict())
        assert rebuilt == op
        assert hash(rebuilt) == hash(op)

    def test_wires_carry_dimensions(self):
        t = Qudit(4, 3)
        rebuilt = GateOperation.from_dict(X_PLUS_1.on(t).to_dict())
        assert rebuilt.qudits == (t,)
        assert rebuilt.qudits[0].dimension == 3


class TestMomentSerialization:
    def test_round_trip(self):
        a, b, c = qubits(3)
        moment = Moment([CNOT.on(a, b), X.on(c)])
        rebuilt = Moment.from_dict(moment.to_dict())
        assert rebuilt == moment
        assert hash(rebuilt) == hash(moment)

    def test_equality_is_order_insensitive(self):
        a, b = qubits(2)
        assert Moment([X.on(a), H.on(b)]) == Moment([H.on(b), X.on(a)])

    def test_empty_moment_round_trips(self):
        assert Moment.from_dict(Moment().to_dict()) == Moment()


class TestCircuitSerialization:
    def test_round_trip_preserves_structure(self):
        circuit = _sample_circuit()
        rebuilt = Circuit.from_json(circuit.to_json())
        assert rebuilt == circuit
        assert hash(rebuilt) == hash(circuit)
        assert rebuilt.depth == circuit.depth
        assert rebuilt.moments == circuit.moments

    def test_round_trip_preserves_barriers(self):
        circuit = _sample_circuit()
        rebuilt = Circuit.from_json(circuit.to_json())
        assert rebuilt.barrier_floors == circuit.barrier_floors
        # Continued building respects the restored floors the same way.
        a = qubits(1)[0]
        assert Circuit.from_json(circuit.to_json()).append(
            [X.on(a)]
        ).depth == circuit.append([X.on(a)]).depth

    def test_pretty_json_round_trips(self):
        circuit = _sample_circuit()
        assert Circuit.from_json(circuit.to_json(indent=2)) == circuit

    def test_version_checked(self):
        with pytest.raises(SerializationError, match="version"):
            Circuit.from_dict({"version": 1, "moments": []})

    def test_bad_json_rejected(self):
        with pytest.raises(SerializationError, match="invalid"):
            Circuit.from_json("not json {")
        with pytest.raises(SerializationError, match="object"):
            Circuit.from_json("[1, 2]")

    def test_empty_circuit_round_trips(self):
        assert Circuit.from_json(Circuit().to_json()) == Circuit()


@pytest.mark.parametrize("name", sorted(CONSTRUCTIONS))
class TestConstructionRoundTrip:
    def test_lowered_form(self, name):
        circuit = build_toffoli(name, 4).circuit
        rebuilt = Circuit.from_json(circuit.to_json())
        assert rebuilt == circuit
        assert hash(rebuilt) == hash(circuit)

    def test_permutation_form(self, name):
        try:
            circuit = build_toffoli(name, 4, decompose=False).circuit
        except TypeError:
            circuit = build_toffoli(name, 4).circuit
        assert Circuit.from_json(circuit.to_json()) == circuit


class TestCircuitIdentity:
    def test_equal_builds_hash_equal(self):
        a = build_toffoli("qutrit_tree", 5).circuit
        b = build_toffoli("qutrit_tree", 5).circuit
        assert a == b
        assert hash(a) == hash(b)

    def test_different_sizes_differ(self):
        assert (
            build_toffoli("qutrit_tree", 5).circuit
            != build_toffoli("qutrit_tree", 6).circuit
        )

    def test_permuted_wires_differ(self):
        a, b = qutrits(2)
        # Single-moment circuits with the same ops on the same wires are
        # equal regardless of insertion order...
        assert Circuit([X_PLUS_1.on(a), X_PLUS_1.on(b)]) == Circuit(
            [X_PLUS_1.on(b), X_PLUS_1.on(a)]
        )
        # ...but binding a two-wire gate to permuted wires is different.
        c1 = Circuit([CNOT.on(*qubits(2))])
        c2 = Circuit([CNOT.on(*reversed(qubits(2)))])
        assert c1 != c2
        assert hash(c1) != hash(c2)

    def test_gate_content_matters(self):
        a = qubits(1)[0]
        assert Circuit([X.on(a)]) != Circuit([H.on(a)])
