"""Tests for text diagrams."""

from repro.circuits.circuit import Circuit
from repro.circuits.diagram import to_text_diagram
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H
from repro.gates.qutrit import X01, X_PLUS_1
from repro.qudits import qubits, qutrits


class TestDiagram:
    def test_empty_circuit(self):
        assert to_text_diagram(Circuit()) == "(empty circuit)"

    def test_every_wire_gets_a_row(self):
        a, b, c = qutrits(3)
        circuit = Circuit(
            [ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b), X01.on(c)]
        )
        text = to_text_diagram(circuit)
        assert len(text.splitlines()) == 3

    def test_control_values_shown(self):
        a, b = qutrits(2)
        circuit = Circuit([ControlledGate(X01, (3,), (2,)).on(a, b)])
        text = to_text_diagram(circuit)
        assert "@2" in text
        assert "X01" in text

    def test_figure4_toffoli_shape(self):
        # The paper's Figure 4: |1>-controlled X+1, |2>-controlled X01,
        # then the restoring X-1.
        q0, q1, q2 = qutrits(3)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(q0, q1),
                ControlledGate(X01, (3,), (2,)).on(q1, q2),
                ControlledGate(
                    X_PLUS_1.inverse(), (3,), (1,)
                ).on(q0, q1),
            ]
        )
        text = to_text_diagram(circuit)
        assert "@1" in text and "@2" in text
        assert text.count("@1") == 2

    def test_truncation(self):
        a = qubits(1)[0]
        circuit = Circuit([H.on(a) for _ in range(10)])
        text = to_text_diagram(circuit, max_moments=3)
        assert "..." in text

    def test_moment_alignment(self):
        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        rows = to_text_diagram(circuit).splitlines()
        # Both rows have identical length (columns aligned).
        assert len(rows[0]) == len(rows[1])
