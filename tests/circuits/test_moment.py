"""Tests for moments of simultaneous operations."""

import pytest

from repro.circuits.moment import Moment
from repro.exceptions import SchedulingError
from repro.gates.qubit import CNOT, H, X
from repro.qudits import qubits


class TestMoment:
    def test_disjoint_operations_allowed(self):
        a, b, c = qubits(3)
        moment = Moment([X.on(a), CNOT.on(b, c)])
        assert len(moment) == 2
        assert moment.qudits == {a, b, c}

    def test_overlapping_operations_rejected(self):
        a, b = qubits(2)
        with pytest.raises(SchedulingError):
            Moment([X.on(a), CNOT.on(a, b)])

    def test_has_multi_qudit_gate(self):
        a, b, c = qubits(3)
        assert Moment([CNOT.on(a, b)]).has_multi_qudit_gate
        assert not Moment([X.on(a), H.on(c)]).has_multi_qudit_gate

    def test_operates_on(self):
        a, b, c = qubits(3)
        moment = Moment([CNOT.on(a, b)])
        assert moment.operates_on([a])
        assert not moment.operates_on([c])

    def test_with_operation_checks_overlap(self):
        a, b = qubits(2)
        moment = Moment([X.on(a)])
        extended = moment.with_operation(H.on(b))
        assert len(extended) == 2
        with pytest.raises(SchedulingError):
            extended.with_operation(X.on(a))

    def test_inverse_inverts_each_op(self):
        a, b = qubits(2)
        moment = Moment([CNOT.on(a, b)])
        inv = moment.inverse()
        assert len(inv) == 1
        # CNOT is self-inverse.
        assert inv.operations[0] == CNOT.on(a, b)

    def test_empty_moment(self):
        moment = Moment()
        assert len(moment) == 0
        assert not moment.has_multi_qudit_gate
