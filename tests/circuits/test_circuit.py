"""Tests for ASAP-scheduled circuits."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import SchedulingError, SimulationError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.linalg import allclose_up_to_global_phase
from repro.qudits import Qudit, qubits, qutrits


class TestScheduling:
    def test_parallel_gates_share_a_moment(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), X.on(b)])
        assert circuit.depth == 1
        assert len(circuit.moments[0]) == 2

    def test_dependent_gates_stack(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b), X.on(b)])
        assert circuit.depth == 3

    def test_asap_slides_past_busy_wires(self):
        a, b, c = qubits(3)
        circuit = Circuit([CNOT.on(a, b), X.on(c)])
        # X on c is independent, so it shares moment 0.
        assert circuit.depth == 1

    def test_independent_chains_interleave(self):
        a, b, c, d = qubits(4)
        circuit = Circuit([X.on(a), X.on(b), CNOT.on(a, b), X.on(c), X.on(d)])
        assert circuit.depth == 2  # CNOT in moment 1; all X's in moment 0

    def test_append_moment_is_a_barrier(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a)])
        circuit.append_moment([X.on(b)])
        circuit.append([X.on(b)])
        # The explicit moment forces X(b) to moment 1; next lands at 2.
        assert circuit.depth == 3

    def test_barrier_blocks_sliding(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a)])
        circuit.barrier()
        circuit.append([X.on(b)])
        assert circuit.depth == 2

    def test_nested_op_trees_flatten(self):
        a, b = qubits(2)
        circuit = Circuit([[X.on(a)], [[H.on(b)]]])
        assert circuit.num_operations == 2

    def test_barrier_floors_recorded(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a)])
        circuit.barrier()
        circuit.append([X.on(b)])
        assert circuit.barrier_floors == (1,)

    def test_addition_preserves_left_barrier(self):
        a, b = qubits(2)
        c1 = Circuit([X.on(a)])
        c1.barrier()
        c2 = Circuit([X.on(b)])
        combined = c1 + c2
        # Without barrier replay X(b) would slide into moment 0.
        assert combined.depth == 2
        assert combined.moments[1].operates_on([b])

    def test_addition_preserves_internal_barriers(self):
        a, b = qubits(2)
        c2 = Circuit([X.on(a)])
        c2.barrier()
        c2.append([X.on(b)])
        combined = Circuit() + c2
        assert combined.depth == 2
        assert combined.barrier_floors == (1,)

    def test_trailing_barrier_survives_addition(self):
        a, b = qubits(2)
        c1 = Circuit([X.on(a)])
        c1.barrier()
        combined = c1 + Circuit()
        combined.append([X.on(b)])
        assert combined.depth == 2

    def test_rescheduled_packs_without_barriers(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a)])
        circuit.barrier()
        circuit.append([X.on(b)])
        assert circuit.rescheduled().depth == 2
        assert circuit.rescheduled(preserve_barriers=False).depth == 1


class TestMetrics:
    def test_gate_counts(self):
        a, b, c = qubits(3)
        circuit = Circuit([X.on(a), CNOT.on(a, b), CNOT.on(b, c), H.on(a)])
        assert circuit.num_operations == 4
        assert circuit.two_qudit_gate_count == 2
        assert circuit.single_qudit_gate_count == 2

    def test_counts_track_every_append_path(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a)])
        circuit.append_moment([CNOT.on(a, b)])
        circuit.append([H.on(b)])
        assert circuit.num_operations == 3
        assert circuit.two_qudit_gate_count == 1
        assert circuit.single_qudit_gate_count == 2
        # Derived circuits re-count from scratch.
        assert circuit.inverse().two_qudit_gate_count == 1
        assert (circuit + circuit).num_operations == 6
        assert circuit.transformed(lambda op: op).two_qudit_gate_count == 1

    def test_counts_do_not_rewalk_operations(self, monkeypatch):
        # The counters are maintained on append; property access must be
        # O(1), never a pass over all_operations() (the pre-PR-4 cost
        # that made large-N resource sweeps quadratic).
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])

        def boom(self):
            raise AssertionError("gate-count property walked the moments")

        monkeypatch.setattr(Circuit, "all_operations", boom)
        assert circuit.num_operations == 2
        assert circuit.two_qudit_gate_count == 1
        assert circuit.single_qudit_gate_count == 1

    @pytest.mark.slow
    def test_large_circuit_count_access_scales(self):
        # Smoke test: thousands of property reads on a large-N tree stay
        # well under the cost of one circuit walk per read.
        import time

        from repro.toffoli.registry import construction_circuit

        circuit = construction_circuit("qutrit_tree", 64)
        assert circuit.num_operations > 400
        start = time.perf_counter()
        for _ in range(10_000):
            circuit.two_qudit_gate_count
            circuit.single_qudit_gate_count
        elapsed = time.perf_counter() - start
        # 20k O(1) reads; generous bound (a re-walking implementation
        # takes orders of magnitude longer on a >400-op circuit).
        assert elapsed < 1.0

    def test_max_gate_width(self):
        a, b, c = qubits(3)
        wide = ControlledGate(X, (2, 2)).on(a, b, c)
        assert Circuit([wide]).max_gate_width() == 3

    def test_all_qudits_sorted(self):
        a, b = Qudit(5, 2), Qudit(1, 2)
        circuit = Circuit([X.on(a), X.on(b)])
        assert circuit.all_qudits() == [b, a]

    def test_empty_circuit(self):
        circuit = Circuit()
        assert circuit.depth == 0
        assert circuit.num_operations == 0
        assert circuit.max_gate_width() == 0


class TestInverseAndComposition:
    def test_inverse_reverses_unitary(self):
        a, b = qutrits(2)
        circuit = Circuit(
            [X_PLUS_1.on(a), ControlledGate(X01, (3,), (2,)).on(a, b)]
        )
        combined = circuit + circuit.inverse()
        u = combined.unitary([a, b])
        assert np.allclose(u, np.eye(9), atol=1e-9)

    def test_addition_concatenates(self):
        a = Qudit(0, 2)
        c1, c2 = Circuit([X.on(a)]), Circuit([H.on(a)])
        combined = c1 + c2
        assert combined.num_operations == 2
        assert allclose_up_to_global_phase(
            combined.unitary([a]), H.unitary() @ X.unitary()
        )


class TestDenseSemantics:
    def test_unitary_of_bell_circuit(self):
        a, b = qubits(2)
        circuit = Circuit([H.on(a), CNOT.on(a, b)])
        u = circuit.unitary([a, b])
        column = u[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(column, expected)

    def test_unitary_respects_wire_order(self):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        u_ab = circuit.unitary([a, b])
        u_ba = circuit.unitary([b, a])
        assert not np.allclose(u_ab, u_ba)

    def test_unitary_missing_wire_rejected(self):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        with pytest.raises(SimulationError):
            circuit.unitary([a])

    def test_unitary_size_guard(self):
        wires = qubits(15)
        circuit = Circuit([X.on(w) for w in wires])
        with pytest.raises(SimulationError):
            circuit.unitary(wires)

    def test_classical_map(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])
        out = circuit.classical_map({a: 0, b: 0})
        assert out == {a: 1, b: 1}

    def test_classical_map_missing_input(self):
        a, b = qubits(2)
        circuit = Circuit([CNOT.on(a, b)])
        with pytest.raises(SchedulingError):
            circuit.classical_map({a: 1})
