"""Tests for gate operations bound to wires."""

import numpy as np
import pytest

from repro.circuits.operation import GateOperation
from repro.exceptions import DimensionMismatchError
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.qudits import Qudit, qubits


class TestConstruction:
    def test_wire_count_must_match_gate(self):
        with pytest.raises(DimensionMismatchError):
            GateOperation(CNOT, (Qudit(0, 2),))

    def test_wire_dimensions_must_match_gate(self):
        with pytest.raises(DimensionMismatchError):
            GateOperation(X01, (Qudit(0, 2),))

    def test_duplicate_wires_rejected(self):
        wire = Qudit(0, 2)
        with pytest.raises(ValueError):
            GateOperation(CNOT, (wire, wire))

    def test_is_multi_qudit(self):
        a, b = qubits(2)
        assert CNOT.on(a, b).is_multi_qudit
        assert not X.on(a).is_multi_qudit


class TestSemantics:
    def test_classical_action_returns_touched_wires(self):
        a, b = qubits(2)
        out = CNOT.on(a, b).classical_action({a: 1, b: 0})
        assert out == {a: 1, b: 1}

    def test_inverse_operation(self):
        t = Qudit(0, 3)
        op = X_PLUS_1.on(t)
        inv = op.inverse()
        assert inv.qudits == op.qudits
        assert np.allclose(
            inv.unitary() @ op.unitary(), np.eye(3), atol=1e-9
        )

    def test_with_wires_remap(self):
        a, b = qubits(2)
        c, d = qubits(2, start=10)
        op = CNOT.on(a, b).with_wires({a: c, b: d})
        assert op.qudits == (c, d)

    def test_with_wires_rejects_dim_change(self):
        a, b = qubits(2)
        with pytest.raises(DimensionMismatchError):
            CNOT.on(a, b).with_wires({a: Qudit(10, 3)})

    def test_equality_uses_matrix(self):
        a = Qudit(0, 2)
        assert X.on(a) == X.on(a)
        assert X.on(a) != H.on(a)

    def test_controlled_operation_classical(self):
        c, t = Qudit(0, 3), Qudit(1, 3)
        op = ControlledGate(X_PLUS_1, (3,), (2,)).on(c, t)
        assert op.classical_action({c: 2, t: 0}) == {c: 2, t: 1}
        assert op.classical_action({c: 1, t: 0}) == {c: 1, t: 0}
