"""Barrier-segment helpers: the optimizer's moment-replacement surface.

The regression these tests pin: rewrite passes replace each
barrier-delimited span through ``with_replaced_moments`` and barriers
must survive — a pass can reorder freely *inside* a span but must never
move a gate across a floor the circuit author placed.
"""

import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qutrit import X01, X12, X_PLUS_1
from repro.qudits import qutrits


def _staged_circuit():
    a, b = qutrits(2)
    circuit = Circuit()
    circuit.append(X01.on(a))
    circuit.append(X12.on(b))
    circuit.barrier()
    circuit.append(X_PLUS_1.on(a))
    circuit.barrier()
    circuit.append(X01.on(b))
    return circuit, (a, b)


class TestBarrierSegments:
    def test_segments_split_on_floors(self):
        circuit, _ = _staged_circuit()
        segments = circuit.barrier_segments()
        assert len(segments) == 3
        assert [
            sum(len(moment) for moment in segment) for segment in segments
        ] == [2, 1, 1]

    def test_unbarriered_circuit_is_one_segment(self):
        circuit, _ = _staged_circuit()
        flat = Circuit()
        for op in circuit.all_operations():
            flat.append(op)
        assert len(flat.barrier_segments()) == 1

    def test_trailing_barrier_adds_no_empty_segment(self):
        # A floor at the very end guards future appends; it delimits no
        # span, so segmentation yields just the one populated segment
        # (with_replaced_moments still re-issues the trailing floor).
        a, = qutrits(1)
        circuit = Circuit()
        circuit.append(X01.on(a))
        circuit.barrier()
        assert [len(s) for s in circuit.barrier_segments()] == [1]


class TestWithReplacedMoments:
    def test_identity_replacement_preserves_floors(self):
        circuit, _ = _staged_circuit()
        rebuilt = circuit.with_replaced_moments(
            circuit.barrier_segments()
        )
        assert rebuilt == circuit
        assert rebuilt.barrier_floors == circuit.barrier_floors

    def test_op_list_segments_respect_floors(self):
        # The optimizer's shape: each segment handed back as a flat op
        # list; gates must still not cross the original barriers.
        circuit, (a, b) = _staged_circuit()
        segments = [
            [op for moment in segment for op in moment]
            for segment in circuit.barrier_segments()
        ]
        rebuilt = circuit.with_replaced_moments(segments)
        assert rebuilt.barrier_floors == circuit.barrier_floors
        assert list(rebuilt.all_operations()) == list(
            circuit.all_operations()
        )

    def test_shrunken_segment_moves_floors_up(self):
        circuit, (a, b) = _staged_circuit()
        segments = [
            [op for moment in segment for op in moment]
            for segment in circuit.barrier_segments()
        ]
        segments[0] = segments[0][:1]  # drop one gate from span 0
        rebuilt = circuit.with_replaced_moments(segments)
        assert rebuilt.num_operations == circuit.num_operations - 1
        assert len(rebuilt.barrier_floors) == len(circuit.barrier_floors)

    def test_preserve_floors_false_drops_barriers(self):
        circuit, _ = _staged_circuit()
        rebuilt = circuit.with_replaced_moments(
            circuit.barrier_segments(), preserve_floors=False
        )
        assert rebuilt.barrier_floors == ()

    def test_trailing_barrier_survives(self):
        a, = qutrits(1)
        circuit = Circuit()
        circuit.append(X01.on(a))
        circuit.barrier()
        rebuilt = circuit.with_replaced_moments(
            circuit.barrier_segments()
        )
        assert rebuilt.barrier_floors == circuit.barrier_floors

    def test_wrong_segment_count_raises(self):
        circuit, _ = _staged_circuit()
        with pytest.raises(ValueError):
            circuit.with_replaced_moments(circuit.barrier_segments()[:-1])
