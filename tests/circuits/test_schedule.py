"""Tests for moment timing."""

from repro.circuits.circuit import Circuit
from repro.circuits.moment import Moment
from repro.circuits.schedule import (
    moment_duration,
    schedule_durations,
    total_duration,
)
from repro.gates.qubit import CNOT, H, X
from repro.qudits import qubits


class TestDurations:
    def test_single_qudit_moment_duration(self):
        a, b = qubits(2)
        moment = Moment([X.on(a), H.on(b)])
        assert moment_duration(moment, 1e-7, 3e-7) == 1e-7

    def test_two_qudit_moment_duration(self):
        a, b, c = qubits(3)
        moment = Moment([CNOT.on(a, b), X.on(c)])
        assert moment_duration(moment, 1e-7, 3e-7) == 3e-7

    def test_schedule_durations_per_moment(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b), H.on(b)])
        durations = schedule_durations(circuit.moments, 1.0, 3.0)
        assert durations == [1.0, 3.0, 1.0]

    def test_total_duration(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b), H.on(b)])
        assert total_duration(circuit.moments, 1.0, 3.0) == 5.0

    def test_empty_schedule(self):
        assert schedule_durations([], 1.0, 3.0) == []
        assert total_duration([], 1.0, 3.0) == 0.0
