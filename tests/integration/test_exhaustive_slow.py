"""Paper-scale exhaustive verification (slow suite).

The paper verified every classical input up to width 14 (Sec. 6); the
fast path of that check lives in `tests/toffoli/test_qutrit_tree.py`.
These tests push the *decomposed* (state-vector) circuits and the larger
applications further than the default suite.
"""

from itertools import product

import pytest

from repro.apps.incrementer import qutrit_incrementer_circuit
from repro.sim.statevector import StateVectorSimulator
from repro.toffoli.registry import build_toffoli
from repro.toffoli.verification import verify_statevector

pytestmark = pytest.mark.slow


class TestDecomposedConstructionsWide:
    @pytest.mark.parametrize("n", [6, 7])
    def test_qutrit_tree_decomposed(self, n):
        result = build_toffoli("qutrit_tree", n)
        assert verify_statevector(result) == 2 ** (n + 1)

    @pytest.mark.parametrize("n", [6, 7])
    def test_one_dirty_decomposed(self, n):
        result = build_toffoli("qubit_one_dirty", n)
        assert verify_statevector(result) == 2 ** (n + 1) * 2

    def test_ancilla_free_decomposed(self):
        result = build_toffoli("qubit_ancilla_free", 7)
        assert verify_statevector(result) == 2**8

    def test_he_tree_decomposed(self):
        result = build_toffoli("he_tree", 8)
        assert verify_statevector(result) == 2**9


class TestIncrementerDecomposedWide:
    @pytest.mark.parametrize("width", [5, 6])
    def test_decomposed_increment_exhaustive(self, width):
        circuit, register = qutrit_incrementer_circuit(width)
        sim = StateVectorSimulator()
        for value in range(1 << width):
            bits = [(value >> i) & 1 for i in range(width)]
            state = sim.run_basis(circuit, register, bits)
            successor = (value + 1) % (1 << width)
            expected = [(successor >> i) & 1 for i in range(width)]
            assert state.probability_of(expected) == pytest.approx(
                1.0, abs=1e-6
            )


class TestMixedActivationWide:
    def test_all_binary_patterns_at_width_6(self, classical_sim):
        from repro.toffoli.qutrit_tree import build_qutrit_tree
        from repro.toffoli.spec import GeneralizedToffoli

        n = 6
        for pattern in product([0, 1], repeat=n):
            result = build_qutrit_tree(
                GeneralizedToffoli(n, pattern), decompose=False
            )
            wires = result.controls + [result.target]
            # Check the activating input and two perturbations.
            active = list(pattern) + [0]
            out = classical_sim.run_values(result.circuit, wires, active)
            assert out == tuple(list(pattern) + [1])
            flipped = list(pattern)
            flipped[0] ^= 1
            out = classical_sim.run_values(
                result.circuit, wires, flipped + [0]
            )
            assert out == tuple(flipped + [0])
