"""End-to-end integration tests reproducing the paper's headline claims
at reduced scale (full scale runs live in benchmarks/)."""

import pytest

from repro import build_toffoli, estimate_circuit_fidelity
from repro.analysis.figures import fig9_depth_data, fig10_gate_count_data
from repro.apps.grover import GroverSearch
from repro.apps.incrementer import qutrit_incrementer_circuit
from repro.noise.presets import (
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    SC,
    SC_T1_GATES,
    TI_QUBIT,
)


class TestHeadlineOrdering:
    """The paper's core result: QUTRIT beats the qubit baselines."""

    def test_qutrit_tree_shallower_and_smaller(self):
        depths = fig9_depth_data([32])
        counts = fig10_gate_count_data([32])
        assert depths["QUTRIT"][0] < depths["QUBIT+ANCILLA"][0]
        assert depths["QUBIT+ANCILLA"][0] < depths["QUBIT"][0]
        assert counts["QUTRIT"][0] < counts["QUBIT+ANCILLA"][0]
        assert counts["QUBIT+ANCILLA"][0] < counts["QUBIT"][0]

    @pytest.mark.slow
    def test_fidelity_ordering_under_sc(self):
        # Scaled-down Figure 11 (6 controls): the ordering
        # QUTRIT > QUBIT+ANCILLA > QUBIT must show beyond the 2-sigma
        # bars (~+/-6% at 150 batched trials; 25 were seed-fragile).
        n, trials = 6, 150
        estimates = {}
        for label, name in (
            ("QUTRIT", "qutrit_tree"),
            ("QUBIT+ANCILLA", "qubit_one_dirty"),
            ("QUBIT", "qubit_ancilla_free"),
        ):
            result = build_toffoli(name, n)
            estimates[label] = estimate_circuit_fidelity(
                result.circuit, SC, trials=trials, seed=42,
                wires=result.all_wires, circuit_name=label,
            ).mean_fidelity
        assert estimates["QUTRIT"] > estimates["QUBIT+ANCILLA"]
        assert estimates["QUBIT+ANCILLA"] > estimates["QUBIT"]

    def test_trapped_ion_qutrit_beats_qubit(self):
        n, trials = 5, 20
        tree = build_toffoli("qutrit_tree", n)
        dressed = estimate_circuit_fidelity(
            tree.circuit, DRESSED_QUTRIT, trials=trials, seed=7,
            wires=tree.all_wires,
        ).mean_fidelity
        qubit = build_toffoli("qubit_ancilla_free", n)
        ti = estimate_circuit_fidelity(
            qubit.circuit, TI_QUBIT, trials=trials, seed=7,
            wires=qubit.all_wires,
        ).mean_fidelity
        assert dressed > ti

    def test_dressed_beats_bare(self):
        n, trials = 5, 30
        tree = build_toffoli("qutrit_tree", n)
        dressed = estimate_circuit_fidelity(
            tree.circuit, DRESSED_QUTRIT, trials=trials, seed=3,
            wires=tree.all_wires,
        ).mean_fidelity
        bare = estimate_circuit_fidelity(
            tree.circuit, BARE_QUTRIT, trials=trials, seed=3,
            wires=tree.all_wires,
        ).mean_fidelity
        assert dressed >= bare - 0.02

    def test_better_hardware_better_fidelity(self):
        n, trials = 6, 20
        tree = build_toffoli("qutrit_tree", n)
        base = estimate_circuit_fidelity(
            tree.circuit, SC, trials=trials, seed=5, wires=tree.all_wires
        ).mean_fidelity
        best = estimate_circuit_fidelity(
            tree.circuit, SC_T1_GATES, trials=trials, seed=5,
            wires=tree.all_wires,
        ).mean_fidelity
        assert best > base


class TestApplicationsEndToEnd:
    def test_grover_with_noisy_oracle_still_finds_item(self):
        # A noisy end-to-end Grover run: the algorithm output distribution
        # should still favour the marked item under light noise.
        search = GroverSearch(3, marked=5)
        circuit = search.build_circuit()
        estimate = estimate_circuit_fidelity(
            circuit, SC_T1_GATES, trials=10, seed=9, wires=search.wires
        )
        assert estimate.mean_fidelity > 0.8

    def test_incrementer_composes_with_toffoli_wires(self, classical_sim):
        # Chain: increment twice on a register, verifying scheduling across
        # composite circuits.
        circuit, register = qutrit_incrementer_circuit(5, decompose=False)
        double = circuit + circuit
        out = classical_sim.run_values(double, register, [1, 1, 0, 0, 0])
        assert sum(b << i for i, b in enumerate(out)) == 5

    def test_paper_figure5_instance(self, classical_sim):
        # The exact Figure 5 instance: 15 controls, all active.
        from repro.toffoli.qutrit_tree import build_qutrit_tree
        from repro.toffoli.spec import GeneralizedToffoli

        plain = build_qutrit_tree(GeneralizedToffoli(15), decompose=False)
        values = [1] * 15 + [0]
        out = classical_sim.run_values(
            plain.circuit, plain.controls + [plain.target], values
        )
        assert out == tuple([1] * 15 + [1])
        # And the figure's structure: 7 moments, 15 three-qutrit gates.
        assert plain.circuit.depth == 7
        assert plain.circuit.num_operations == 15
