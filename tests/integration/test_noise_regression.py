"""Regression tests pinning trajectory statistics to analytic expectations.

These catch silent noise-model bugs that ordering-only tests would miss:
the measured error rates must track the closed-form expectations from the
channel parameters and circuit shape.
"""

import numpy as np

from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qubit import CNOT, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.model import NoiseModel
from repro.qudits import qubits, qutrits
from repro.sim.state import StateVector
from repro.sim.trajectory import TrajectorySimulator


class TestGateErrorRates:
    def test_two_qubit_gate_error_rate_matches_15p2(self):
        p2 = 2e-3
        model = NoiseModel("m", 0.0, p2, 1e-7, 3e-7, t1=None)
        a, b = qubits(2)
        gates = 40
        circuit = Circuit([CNOT.on(a, b) for _ in range(gates)])
        sim = TrajectorySimulator(model, np.random.default_rng(0))
        trials = 150
        total_errors = sum(
            sim.run_trajectory(circuit, StateVector.zero([a, b])).gate_errors
            for _ in range(trials)
        )
        expected = gates * 15 * p2
        measured = total_errors / trials
        assert abs(measured - expected) < 0.35 * expected + 0.05

    def test_two_qutrit_gate_error_rate_matches_80p2(self):
        p2 = 2e-3
        model = NoiseModel("m", 0.0, p2, 1e-7, 3e-7, t1=None)
        a, b = qutrits(2)
        gates = 40
        op = ControlledGate(X_PLUS_1, (3,), (1,))
        circuit = Circuit([op.on(a, b) for _ in range(gates)])
        sim = TrajectorySimulator(model, np.random.default_rng(1))
        trials = 150
        total_errors = sum(
            sim.run_trajectory(circuit, StateVector.zero([a, b])).gate_errors
            for _ in range(trials)
        )
        expected = gates * 80 * p2
        measured = total_errors / trials
        assert abs(measured - expected) < 0.3 * expected + 0.05

    def test_qutrit_to_qubit_error_ratio_is_80_over_15(self):
        # The headline cost of qutrits: same per-channel p2, 80/15 more
        # error channels.
        p2 = 1.5e-3
        model = NoiseModel("m", 0.0, p2, 1e-7, 3e-7, t1=None)
        rng = np.random.default_rng(2)
        gates = 30

        def mean_errors(wires, op):
            circuit = Circuit([op.on(*wires) for _ in range(gates)])
            sim = TrajectorySimulator(model, rng)
            return np.mean(
                [
                    sim.run_trajectory(
                        circuit, StateVector.zero(list(wires))
                    ).gate_errors
                    for _ in range(120)
                ]
            )

        qutrit_rate = mean_errors(qutrits(2), ControlledGate(X01, (3,), (1,)))
        qubit_rate = mean_errors(qubits(2), CNOT)
        assert 3.0 < qutrit_rate / qubit_rate < 9.0  # true ratio 80/15=5.3


class TestIdleErrorRates:
    def test_damping_rate_tracks_t1_exactly(self):
        # A fully excited qubit idling across M single-qudit moments jumps
        # with probability 1-exp(-M dt / T1).
        from repro.gates.qutrit import identity_gate

        t1 = 5e-5
        dt = 1e-6
        moments = 20
        model = NoiseModel("m", 0.0, 0.0, dt, dt, t1=t1)
        a, b = qubits(2)
        # Excite a in moment 0; pad the schedule with identity gates on b
        # so b never leaves the ground state (and so cannot jump).
        circuit = Circuit([X.on(a)])
        idle_pad = identity_gate(2)
        for _ in range(moments - 1):
            circuit.append_moment([idle_pad.on(b)])
        sim = TrajectorySimulator(model, np.random.default_rng(3))
        trials = 400
        jumped = 0
        for _ in range(trials):
            initial = StateVector.computational_basis([a, b], (0, 0))
            result = sim.run_trajectory(circuit, initial)
            jumped += result.idle_jumps > 0
        # Wire a is excited for all `moments` idle windows of length dt.
        expected = 1 - np.exp(-moments * dt / t1)
        measured = jumped / trials
        assert abs(measured - expected) < 0.08

    def test_level_two_damps_faster_than_level_one(self):
        t1 = 1e-4
        dt = 2e-6
        model = NoiseModel("m", 0.0, 0.0, dt, dt, t1=t1)
        wire_sets = qutrits(2)
        a, b = wire_sets

        def jump_fraction(level, seed):
            ops = [X_PLUS_1.on(a)] * level + [X01.on(b)]
            circuit = Circuit(ops)
            for _ in range(15):
                circuit.append_moment([X01.on(b)])
            sim = TrajectorySimulator(model, np.random.default_rng(seed))
            jumps = 0
            trials = 250
            for _ in range(trials):
                initial = StateVector.zero([a, b])
                if sim.run_trajectory(circuit, initial).idle_jumps > 0:
                    jumps += 1
            return jumps / trials

        assert jump_fraction(2, 4) > jump_fraction(1, 4)


class TestFidelityRegression:
    def test_fidelity_matches_no_error_probability(self):
        # With depolarizing only and a *small* total error budget, mean
        # fidelity ~ P(no error): corrections from surviving overlap of
        # errored trajectories are O(1/d^N) ~ 0.01 here.
        p2 = 5e-4
        model = NoiseModel("m", 0.0, p2, 1e-7, 3e-7, t1=None)
        a, b = qutrits(2)
        gates = 12
        op = ControlledGate(X_PLUS_1, (3,), (1,))
        circuit = Circuit([op.on(a, b) for _ in range(gates)])
        sim = TrajectorySimulator(model, np.random.default_rng(5))
        fidelities = []
        for _ in range(200):
            initial = sim.random_binary_input([a, b])
            fidelities.append(sim.run_trajectory(circuit, initial).fidelity)
        expected = (1 - 80 * p2) ** gates
        assert abs(np.mean(fidelities) - expected) < 0.05
