"""Failure-injection tests: every guard rail fires on bad input.

A library is adoptable when misuse fails loudly with a useful message
instead of silently producing wrong physics; these tests drive each
documented error path.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import (
    DecompositionError,
    DimensionMismatchError,
    NoiseModelError,
    NotClassicalError,
    SchedulingError,
    SimulationError,
)
from repro.gates.controlled import ControlledGate
from repro.gates.matrix import MatrixGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01
from repro.noise.kraus import KrausChannel, UnitaryMixtureChannel
from repro.qudits import Qudit, qubits, qutrits
from repro.sim.state import StateVector


class TestGateMisuse:
    def test_non_unitary_matrix_rejected(self):
        with pytest.raises(ValueError, match="unitary"):
            MatrixGate(np.array([[1, 0], [1, 1]]), (2,))

    def test_matrix_wrong_shape_for_dims(self):
        with pytest.raises(DimensionMismatchError):
            MatrixGate(np.eye(2), (3,))

    def test_gate_on_wrong_dimension_wire(self):
        with pytest.raises(DimensionMismatchError):
            X01.on(Qudit(0, 2))

    def test_gate_on_wrong_wire_count(self):
        a = Qudit(0, 2)
        with pytest.raises(DimensionMismatchError):
            CNOT.on(a)

    def test_classical_action_of_hadamard(self):
        with pytest.raises(NotClassicalError):
            H.classical_action((0,))

    def test_control_value_exceeds_dimension(self):
        with pytest.raises(ValueError):
            ControlledGate(X, (2,), (5,))


class TestCircuitMisuse:
    def test_overlapping_moment_rejected(self):
        a, b = qubits(2)
        circuit = Circuit()
        with pytest.raises(SchedulingError):
            circuit.append_moment([X.on(a), CNOT.on(a, b)])

    def test_classical_map_with_nonclassical_gate(self):
        a = qubits(1)[0]
        circuit = Circuit([H.on(a)])
        with pytest.raises(NotClassicalError):
            circuit.classical_map({a: 0})

    def test_oversized_dense_unitary_refused(self):
        wires = qutrits(10)
        circuit = Circuit([X01.on(w) for w in wires])
        with pytest.raises(SimulationError):
            circuit.unitary(wires)


class TestSimulatorMisuse:
    def test_state_dim_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            StateVector(qutrits(2), np.zeros(8))

    def test_fidelity_across_registers(self):
        a = StateVector.zero(qubits(2))
        b = StateVector.zero(qubits(3))
        with pytest.raises(SimulationError):
            a.fidelity(b)

    def test_renormalizing_annihilated_state(self):
        a = Qudit(0, 2)
        state = StateVector.zero([a])
        state.apply_matrix(np.array([[0, 0], [0, 1]]), [a])
        with pytest.raises(SimulationError):
            state.renormalize()


class TestNoiseMisuse:
    def test_overweight_mixture_rejected(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        with pytest.raises(NoiseModelError):
            UnitaryMixtureChannel("bad", (2,), [(0.9, x), (0.2, x)])

    def test_incomplete_kraus_set_rejected(self):
        with pytest.raises(NoiseModelError):
            KrausChannel("bad", (2,), [np.diag([1.0, 0.9])])

    def test_negative_duration_rejected(self):
        from repro.noise.damping import damping_lambdas

        with pytest.raises(NoiseModelError):
            damping_lambdas(-1e-9, 1e-3, 3)


class TestConstructionMisuse:
    def test_tree_rejects_qubit_controls(self):
        from repro.toffoli.qutrit_tree import qutrit_multi_controlled_ops

        with pytest.raises(DecompositionError):
            qutrit_multi_controlled_ops(
                qubits(2), [1, 1], Qudit(5, 3), X01
            )

    def test_qubit_baselines_reject_value_two(self):
        from repro.toffoli.registry import build_toffoli

        for name in ("qubit_one_dirty", "qubit_ancilla_free", "he_tree"):
            with pytest.raises(DecompositionError):
                build_toffoli(name, 3, control_values=(2, 1, 1))

    def test_incrementer_rejects_qubit_register(self):
        from repro.apps.incrementer import qutrit_incrementer_ops

        with pytest.raises(DecompositionError):
            qutrit_incrementer_ops(qubits(4))

    def test_router_rejects_disconnected_device(self):
        from repro.arch.routing import route_circuit
        from repro.arch.topology import CouplingGraph

        wires = qubits(2)
        split = CouplingGraph(2, [], "no-edges")
        with pytest.raises(SchedulingError):
            route_circuit(Circuit([CNOT.on(*wires)]), split)
