"""Tests for amplitude damping and dephasing idle channels (A.1.2)."""

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.noise.damping import (
    amplitude_damping_channel,
    damping_lambdas,
    dephasing_channel,
)
from repro.qudits import Qudit
from repro.sim.state import StateVector


class TestLambdas:
    def test_eq9_form(self):
        # lambda_m = 1 - exp(-m dt / T1).
        dt, t1 = 3e-7, 1e-3
        lams = damping_lambdas(dt, t1, 3)
        assert np.isclose(lams[0], 1 - np.exp(-dt / t1))
        assert np.isclose(lams[1], 1 - np.exp(-2 * dt / t1))

    def test_level_two_decays_faster(self):
        lams = damping_lambdas(1e-6, 1e-3, 3)
        assert lams[1] > lams[0]

    def test_zero_duration_is_lossless(self):
        assert damping_lambdas(0.0, 1e-3, 3) == (0.0, 0.0)

    def test_invalid_t1(self):
        with pytest.raises(NoiseModelError):
            damping_lambdas(1e-6, 0.0, 3)

    def test_negative_duration(self):
        with pytest.raises(NoiseModelError):
            damping_lambdas(-1.0, 1e-3, 3)


class TestDampingChannel:
    def test_qubit_kraus_form_eq7(self):
        lam = 0.2
        channel = amplitude_damping_channel(2, (lam,))
        k0, k1 = channel.operators
        assert np.allclose(k0, np.diag([1, np.sqrt(1 - lam)]))
        assert np.allclose(k1, [[0, np.sqrt(lam)], [0, 0]])

    def test_qutrit_kraus_form_eq8(self):
        channel = amplitude_damping_channel(3, (0.1, 0.3))
        k0, k1, k2 = channel.operators
        assert np.allclose(
            k0, np.diag([1, np.sqrt(0.9), np.sqrt(0.7)])
        )
        assert np.isclose(k1[0, 1], np.sqrt(0.1))
        assert np.isclose(k2[0, 2], np.sqrt(0.3))

    def test_ground_state_unaffected(self, rng):
        channel = amplitude_damping_channel(3, (0.5, 0.9))
        wire = Qudit(0, 3)
        state = StateVector.zero([wire])
        branch = channel.apply_sampled(state, [wire], rng)
        assert branch == 0
        assert state.probability_of((0,)) == 1.0

    def test_level2_jumps_to_ground(self, rng):
        channel = amplitude_damping_channel(3, (0.0, 1.0))
        wire = Qudit(0, 3)
        state = StateVector.computational_basis([wire], (2,))
        branch = channel.apply_sampled(state, [wire], rng)
        assert branch == 2
        assert np.isclose(state.probability_of((0,)), 1.0)

    def test_lambda_count_validation(self):
        with pytest.raises(NoiseModelError):
            amplitude_damping_channel(3, (0.1,))

    def test_lambda_range_validation(self):
        with pytest.raises(NoiseModelError):
            amplitude_damping_channel(2, (1.5,))


class TestDephasing:
    def test_clock_kicks_preserve_populations(self, rng):
        channel = dephasing_channel(3, 0.3)
        wire = Qudit(0, 3)
        state = StateVector.computational_basis([wire], (1,))
        channel.apply_sampled(state, [wire], rng)
        assert np.isclose(state.probability_of((1,)), 1.0)

    def test_dephasing_damages_coherence(self, rng):
        from repro.gates.qutrit import QUTRIT_H

        channel = dephasing_channel(3, 1.0 / 3.0)
        wire = Qudit(0, 3)
        reference = StateVector.zero([wire])
        reference.apply_operation(QUTRIT_H.on(wire))
        fidelities = []
        for _ in range(300):
            state = reference.copy()
            channel.apply_sampled(state, [wire], rng)
            fidelities.append(state.fidelity(reference))
        assert np.mean(fidelities) < 0.9

    def test_negative_rate_rejected(self):
        with pytest.raises(NoiseModelError):
            dephasing_channel(3, -0.1)
