"""Tests pinning the named noise models to the paper's Tables 2 and 3."""

import numpy as np
import pytest

from repro.noise.presets import (
    ALL_MODELS,
    BARE_QUTRIT,
    DRESSED_QUTRIT,
    IBM_CURRENT,
    SC,
    SC_GATES,
    SC_T1,
    SC_T1_GATES,
    SUPERCONDUCTING_MODELS,
    TI_QUBIT,
    TRAPPED_ION_MODELS,
)


class TestTable2:
    """Table 2: 3p1 / 15p2 / T1 for the superconducting models."""

    @pytest.mark.parametrize(
        "model,total_p1,total_p2,t1",
        [
            (SC, 1e-4, 1e-3, 1e-3),
            (SC_T1, 1e-4, 1e-3, 10e-3),
            (SC_GATES, 1e-5, 1e-4, 1e-3),
            (SC_T1_GATES, 1e-5, 1e-4, 10e-3),
        ],
    )
    def test_parameters(self, model, total_p1, total_p2, t1):
        assert np.isclose(3 * model.p1, total_p1)
        assert np.isclose(15 * model.p2, total_p2)
        assert model.t1 == t1

    def test_gate_times(self):
        for model in SUPERCONDUCTING_MODELS:
            assert model.gate_time_1q == 100e-9
            assert model.gate_time_2q == 300e-9

    def test_sc_is_ten_x_better_than_ibm(self):
        assert np.isclose(IBM_CURRENT.p1 / SC.p1, 10)
        assert np.isclose(IBM_CURRENT.p2 / SC.p2, 10)
        assert np.isclose(SC.t1 / IBM_CURRENT.t1, 10)

    def test_order_matches_paper(self):
        assert [m.name for m in SUPERCONDUCTING_MODELS] == [
            "SC",
            "SC+T1",
            "SC+GATES",
            "SC+T1+GATES",
        ]


class TestTable3:
    """Table 3: total gate error probabilities for the trapped-ion models."""

    def test_ti_qubit_totals(self):
        assert np.isclose(3 * TI_QUBIT.p1, 6.4e-4)
        assert np.isclose(15 * TI_QUBIT.p2, 1.3e-4)

    def test_bare_qutrit_totals(self):
        assert np.isclose(8 * BARE_QUTRIT.p1, 2.2e-4)
        assert np.isclose(80 * BARE_QUTRIT.p2, 4.3e-4)

    def test_dressed_qutrit_totals(self):
        assert np.isclose(8 * DRESSED_QUTRIT.p1, 1.5e-4)
        assert np.isclose(80 * DRESSED_QUTRIT.p2, 3.1e-4)

    def test_gate_times(self):
        for model in TRAPPED_ION_MODELS:
            assert model.gate_time_1q == 1e-6
            assert model.gate_time_2q == 200e-6

    def test_clock_state_models_have_no_damping(self):
        assert TI_QUBIT.t1 is None
        assert DRESSED_QUTRIT.t1 is None
        assert TI_QUBIT.idle_dephasing_rate == 0.0
        assert DRESSED_QUTRIT.idle_dephasing_rate == 0.0

    def test_bare_qutrit_has_phase_idle_errors(self):
        assert BARE_QUTRIT.t1 is None
        assert BARE_QUTRIT.idle_dephasing_rate > 0

    def test_dressed_beats_bare_on_gates(self):
        assert DRESSED_QUTRIT.p1 < BARE_QUTRIT.p1
        assert DRESSED_QUTRIT.p2 < BARE_QUTRIT.p2


class TestRegistry:
    def test_all_models_by_name(self):
        assert set(ALL_MODELS) == {
            "IBM_CURRENT",
            "SC",
            "SC+T1",
            "SC+GATES",
            "SC+T1+GATES",
            "TI_QUBIT",
            "BARE_QUTRIT",
            "DRESSED_QUTRIT",
        }

    def test_names_are_consistent(self):
        for name, model in ALL_MODELS.items():
            assert model.name == name
