"""Tests for generalized-Pauli depolarizing channels (Appendix A.1.1)."""

import numpy as np
import pytest

from repro.linalg import is_unitary
from repro.noise.depolarizing import (
    gate_error_channel,
    generalized_paulis,
    single_qudit_depolarizing,
    two_qudit_depolarizing,
)


class TestGeneralizedPaulis:
    def test_qubit_count_is_three(self):
        assert len(generalized_paulis(2)) == 3

    def test_qutrit_count_is_eight(self):
        # "For d = 3 there are 9 ... gate error channels" minus identity.
        assert len(generalized_paulis(3)) == 8

    def test_all_unitary(self):
        for d in (2, 3, 4):
            for p in generalized_paulis(d):
                assert is_unitary(p)

    def test_qubit_paulis_match_xz_products(self):
        paulis = generalized_paulis(2)
        x = np.array([[0, 1], [1, 0]])
        z = np.diag([1, -1])
        expected = [z, x, x @ z]
        for got, want in zip(paulis, expected):
            assert np.allclose(got, want)

    def test_pauli_basis_completeness(self):
        # Identity + the d^2-1 errors span all d x d matrices.
        d = 3
        mats = [np.eye(d)] + generalized_paulis(d)
        flat = np.stack([m.reshape(-1) for m in mats])
        assert np.linalg.matrix_rank(flat) == d * d


class TestChannels:
    def test_single_qudit_totals(self):
        # Total error = (d^2 - 1) p: the paper's 3p1 / 8p1.
        assert np.isclose(
            single_qudit_depolarizing(2, 1e-4).error_probability, 3e-4
        )
        assert np.isclose(
            single_qudit_depolarizing(3, 1e-4).error_probability, 8e-4
        )

    def test_two_qudit_totals(self):
        # 15 p2 for qubits, 80 p2 for qutrits (eqs. 4 and 6).
        assert np.isclose(
            two_qudit_depolarizing(2, 2, 1e-5).error_probability, 15e-5
        )
        assert np.isclose(
            two_qudit_depolarizing(3, 3, 1e-5).error_probability, 80e-5
        )

    def test_mixed_dimension_channel(self):
        channel = two_qudit_depolarizing(3, 2, 1e-5)
        assert channel.num_error_terms == 9 * 4 - 1
        assert channel.dims == (3, 2)

    def test_channels_are_cached(self):
        a = single_qudit_depolarizing(3, 1e-4)
        b = single_qudit_depolarizing(3, 1e-4)
        assert a is b

    def test_gate_error_dispatch(self):
        assert gate_error_channel((3,), 1e-4, 1e-5).num_error_terms == 8
        assert gate_error_channel((3, 3), 1e-4, 1e-5).num_error_terms == 80
        with pytest.raises(ValueError):
            gate_error_channel((2, 2, 2), 1e-4, 1e-5)

    def test_reliability_ratio_statement(self):
        # Two-qutrit gates are (1-80p2)/(1-15p2) times less reliable.
        p2 = 1e-3
        qutrit = two_qudit_depolarizing(3, 3, p2)
        qubit = two_qudit_depolarizing(2, 2, p2)
        ratio = (1 - qutrit.error_probability) / (
            1 - qubit.error_probability
        )
        assert np.isclose(ratio, (1 - 80 * p2) / (1 - 15 * p2))
