"""Tests for the channel framework."""

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.noise.kraus import KrausChannel, UnitaryMixtureChannel
from repro.qudits import Qudit
from repro.sim.state import StateVector

X_MAT = np.array([[0, 1], [1, 0]], dtype=complex)
Z_MAT = np.diag([1, -1]).astype(complex)


class TestUnitaryMixture:
    def test_error_probability_sums(self):
        channel = UnitaryMixtureChannel(
            "test", (2,), [(0.1, X_MAT), (0.05, Z_MAT)]
        )
        assert np.isclose(channel.error_probability, 0.15)
        assert channel.num_error_terms == 2

    def test_probabilities_above_one_rejected(self):
        with pytest.raises(NoiseModelError):
            UnitaryMixtureChannel("bad", (2,), [(0.7, X_MAT), (0.6, Z_MAT)])

    def test_negative_probability_rejected(self):
        with pytest.raises(NoiseModelError):
            UnitaryMixtureChannel("bad", (2,), [(-0.1, X_MAT)])

    def test_wrong_shape_rejected(self):
        with pytest.raises(NoiseModelError):
            UnitaryMixtureChannel("bad", (2, 2), [(0.1, X_MAT)])

    def test_sampling_statistics(self, rng):
        channel = UnitaryMixtureChannel("test", (2,), [(0.3, X_MAT)])
        fired = sum(
            channel.sample(rng) is not None for _ in range(4000)
        )
        assert abs(fired / 4000 - 0.3) < 0.05

    def test_zero_probability_never_fires(self, rng):
        channel = UnitaryMixtureChannel("test", (2,), [(0.0, X_MAT)])
        assert all(channel.sample(rng) is None for _ in range(100))

    def test_apply_sampled_mutates_state(self, rng):
        channel = UnitaryMixtureChannel("test", (2,), [(1.0, X_MAT)])
        wire = Qudit(0, 2)
        state = StateVector.zero([wire])
        fired = channel.apply_sampled(state, [wire], rng)
        assert fired
        assert state.probability_of((1,)) == 1.0


class TestKrausChannel:
    def test_completeness_enforced(self):
        bad = [np.diag([1.0, 0.5])]
        with pytest.raises(NoiseModelError):
            KrausChannel("bad", (2,), bad)

    def test_damping_probabilities_track_excitation(self):
        lam = 0.3
        k0 = np.diag([1.0, np.sqrt(1 - lam)])
        k1 = np.array([[0, np.sqrt(lam)], [0, 0]])
        channel = KrausChannel("damp", (2,), [k0, k1])
        wire = Qudit(0, 2)
        ground = StateVector.zero([wire])
        probs = channel.branch_probabilities(ground, [wire])
        assert np.allclose(probs, [1.0, 0.0])
        excited = StateVector.computational_basis([wire], (1,))
        probs = channel.branch_probabilities(excited, [wire])
        assert np.allclose(probs, [1 - lam, lam])

    def test_apply_sampled_renormalises(self, rng):
        lam = 0.5
        k0 = np.diag([1.0, np.sqrt(1 - lam)])
        k1 = np.array([[0, np.sqrt(lam)], [0, 0]])
        channel = KrausChannel("damp", (2,), [k0, k1])
        wire = Qudit(0, 2)
        state = StateVector.computational_basis([wire], (1,))
        channel.apply_sampled(state, [wire], rng)
        assert np.isclose(state.norm(), 1.0)

    def test_jump_statistics(self, rng):
        lam = 0.4
        k0 = np.diag([1.0, np.sqrt(1 - lam)])
        k1 = np.array([[0, np.sqrt(lam)], [0, 0]])
        channel = KrausChannel("damp", (2,), [k0, k1])
        wire = Qudit(0, 2)
        jumps = 0
        for _ in range(2000):
            state = StateVector.computational_basis([wire], (1,))
            if channel.apply_sampled(state, [wire], rng) > 0:
                jumps += 1
        assert abs(jumps / 2000 - lam) < 0.05

    def test_general_nondiagonal_path(self, rng):
        # Kraus ops whose Gram matrices are not diagonal exercise the
        # slow (apply-and-norm) branch.
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        p0 = np.array([[1, 0], [0, 0]]) @ h
        p1 = np.array([[0, 0], [0, 1]]) @ h
        channel = KrausChannel("measure_x", (2,), [p0, p1])
        wire = Qudit(0, 2)
        state = StateVector.zero([wire])
        probs = channel.branch_probabilities(state, [wire])
        assert np.allclose(probs, [0.5, 0.5])

    def test_needs_operators(self):
        with pytest.raises(NoiseModelError):
            KrausChannel("empty", (2,), [])
