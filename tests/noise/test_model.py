"""Tests for the generic parametrized noise model (Sec. 7.1)."""

import numpy as np
import pytest

from repro.circuits.moment import Moment
from repro.gates.qubit import CNOT, X
from repro.noise.model import NoiseModel
from repro.qudits import qubits


@pytest.fixture
def model() -> NoiseModel:
    return NoiseModel(
        name="test",
        p1=1e-4,
        p2=1e-5,
        gate_time_1q=1e-7,
        gate_time_2q=3e-7,
        t1=1e-3,
    )


class TestGateErrors:
    def test_total_error_scales_with_dimension(self, model):
        assert np.isclose(model.total_gate_error((2,)), 3e-4)
        assert np.isclose(model.total_gate_error((3,)), 8e-4)
        assert np.isclose(model.total_gate_error((2, 2)), 15e-5)
        assert np.isclose(model.total_gate_error((3, 3)), 80e-5)

    def test_reliability_ratio(self, model):
        expected = (1 - 80 * model.p2) / (1 - 15 * model.p2)
        assert np.isclose(model.reliability_ratio_two_qudit(), expected)

    def test_gate_error_channel_dims(self, model):
        assert model.gate_error((3, 2)).dims == (3, 2)


class TestIdleErrors:
    def test_idle_lambdas_use_t1(self, model):
        lams = model.idle_lambdas(3, 3e-7)
        assert np.isclose(lams[0], 1 - np.exp(-3e-7 / 1e-3))
        assert np.isclose(lams[1], 1 - np.exp(-6e-7 / 1e-3))

    def test_no_t1_means_no_damping(self):
        clock = NoiseModel(
            "clock", 1e-4, 1e-5, 1e-6, 2e-4, t1=None
        )
        assert clock.idle_lambdas(3, 1.0) == (0.0, 0.0)
        assert clock.idle_channels(3, 1.0) == []

    def test_damping_channel_produced(self, model):
        channels = model.idle_channels(3, 3e-7)
        assert len(channels) == 1

    def test_dephasing_channel_added_for_bare_models(self):
        bare = NoiseModel(
            "bare", 1e-4, 1e-5, 1e-6, 2e-4, t1=None,
            idle_dephasing_rate=0.05,
        )
        channels = bare.idle_channels(3, 1e-3)
        assert len(channels) == 1
        assert np.isclose(channels[0].error_probability, 2 * 0.05 * 1e-3)


class TestDurations:
    def test_moment_duration_depends_on_gate_width(self, model):
        a, b = qubits(2)
        assert model.moment_duration(Moment([X.on(a)])) == 1e-7
        assert model.moment_duration(Moment([CNOT.on(a, b)])) == 3e-7

    def test_circuit_duration_sums(self, model):
        a, b = qubits(2)
        moments = [Moment([X.on(a)]), Moment([CNOT.on(a, b)])]
        assert np.isclose(model.circuit_duration(moments), 4e-7)
