"""Tests for the ternary / qudit gate library (paper Sec. 2, Figure 3)."""

import numpy as np
import pytest

from repro.gates.qubit import H as QUBIT_H
from repro.gates.qubit import X as QUBIT_X
from repro.gates.qutrit import (
    QUTRIT_H,
    X01,
    X02,
    X12,
    X_MINUS_1,
    X_PLUS_1,
    Z3,
    clock_gate,
    embedded_qubit_gate,
    fourier_gate,
    identity_gate,
    level_swap,
    phase_gate,
    shift_gate,
)
from repro.linalg import is_unitary


class TestTranspositions:
    """The left-hand state diagram of Figure 3."""

    def test_x01_swaps_0_1_fixes_2(self):
        assert X01.classical_action((0,)) == (1,)
        assert X01.classical_action((1,)) == (0,)
        assert X01.classical_action((2,)) == (2,)

    def test_x02_swaps_0_2_fixes_1(self):
        assert X02.classical_action((0,)) == (2,)
        assert X02.classical_action((2,)) == (0,)
        assert X02.classical_action((1,)) == (1,)

    def test_x12_swaps_1_2_fixes_0(self):
        assert X12.classical_action((1,)) == (2,)
        assert X12.classical_action((2,)) == (1,)
        assert X12.classical_action((0,)) == (0,)

    def test_transpositions_are_self_inverse(self):
        for gate in (X01, X02, X12):
            u = gate.unitary()
            assert np.allclose(u @ u, np.eye(3))

    def test_level_swap_rejects_equal_levels(self):
        with pytest.raises(ValueError):
            level_swap(3, 1, 1)


class TestShifts:
    """The right-hand state diagram of Figure 3."""

    def test_plus_one_cycles(self):
        assert X_PLUS_1.classical_action((0,)) == (1,)
        assert X_PLUS_1.classical_action((1,)) == (2,)
        assert X_PLUS_1.classical_action((2,)) == (0,)

    def test_minus_one_is_inverse_of_plus_one(self):
        u = X_PLUS_1.unitary() @ X_MINUS_1.unitary()
        assert np.allclose(u, np.eye(3))

    def test_plus_one_equals_x01_x12_product(self):
        # The paper writes X+1 = X01 X12 (operator product: X12 acts first).
        composed = X01.unitary() @ X12.unitary()
        assert np.allclose(composed, X_PLUS_1.unitary())

    def test_three_shifts_are_identity(self):
        u = X_PLUS_1.unitary()
        assert np.allclose(u @ u @ u, np.eye(3))

    def test_shift_gate_general_d(self):
        gate = shift_gate(5, 2)
        assert gate.classical_action((4,)) == (1,)


class TestClockAndFourier:
    def test_z3_phases(self):
        w = np.exp(2j * np.pi / 3)
        assert np.allclose(Z3.unitary(), np.diag([1, w, w**2]))

    def test_clock_power(self):
        w = np.exp(2j * np.pi / 3)
        assert np.allclose(
            clock_gate(3, 2).unitary(), np.diag([1, w**2, w**4])
        )

    def test_qutrit_hadamard_is_unitary(self):
        assert is_unitary(QUTRIT_H.unitary())

    def test_fourier_diagonalises_shift(self):
        # F^-1 Z F = X+1 (the discrete Fourier transform swaps shift/clock).
        f = fourier_gate(3).unitary()
        z = Z3.unitary()
        x = X_PLUS_1.unitary()
        assert np.allclose(f.conj().T @ z @ f, x, atol=1e-9)

    def test_fourier_generalises_hadamard(self):
        f2 = fourier_gate(2).unitary()
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert np.allclose(f2, h)


class TestEmbeddingAndPhases:
    def test_embedded_x_is_x01(self):
        embedded = embedded_qubit_gate(QUBIT_X, 3)
        assert np.allclose(embedded.unitary(), X01.unitary())

    def test_embedded_x_on_levels_1_2_is_x12(self):
        embedded = embedded_qubit_gate(QUBIT_X, 3, levels=(1, 2))
        assert np.allclose(embedded.unitary(), X12.unitary())

    def test_embedded_h_fixes_level_2(self):
        embedded = embedded_qubit_gate(QUBIT_H, 3).unitary()
        assert np.isclose(embedded[2, 2], 1.0)
        assert np.allclose(embedded[2, :2], 0.0)

    def test_embedded_rejects_multiqubit(self):
        from repro.gates.qubit import CNOT

        with pytest.raises(ValueError):
            embedded_qubit_gate(CNOT, 3)

    def test_phase_gate_single_level(self):
        gate = phase_gate(3, 2, np.pi)
        assert np.allclose(gate.unitary(), np.diag([1, 1, -1]))

    def test_identity_gate(self):
        assert np.allclose(identity_gate(4).unitary(), np.eye(4))
