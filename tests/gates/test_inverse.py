"""Tests for Gate.inverse(): semantic rules, fallbacks, round-trips."""

import numpy as np
import pytest

from repro.gates import (
    CNOT,
    GATE_REGISTRY,
    H,
    MatrixGate,
    S,
    S_DAG,
    T,
    T_DAG,
    GateSpec,
    inverse_spec,
    semantic_inverse,
    shift_gate,
)
from repro.gates.base import PhasedGate
from repro.gates.qutrit import X01, clock_gate, phase_gate

from .test_spec import GATE_CATALOG


@pytest.mark.parametrize("gate", GATE_CATALOG.values(), ids=GATE_CATALOG)
class TestCatalogInverseRoundTrip:
    def test_product_is_identity(self, gate):
        product = gate.inverse().unitary() @ gate.unitary()
        assert np.allclose(product, np.eye(product.shape[0]), atol=1e-9)

    def test_inverse_preserves_dims(self, gate):
        assert gate.inverse().dims == gate.dims

    def test_double_inverse_matches_unitary(self, gate):
        twice = gate.inverse().inverse()
        assert np.allclose(twice.unitary(), gate.unitary(), atol=1e-9)


class TestSemanticInverses:
    """Known gates invert to their *named* partners, not opaque daggers."""

    @pytest.mark.parametrize(
        "gate, partner",
        [(T, T_DAG), (T_DAG, T), (S, S_DAG), (S_DAG, S)],
        ids=["T", "T_DAG", "S", "S_DAG"],
    )
    def test_dag_pairs(self, gate, partner):
        assert gate.inverse().canonical_spec() == partner.canonical_spec()

    def test_self_inverse_constants(self):
        for gate in (H, CNOT, X01):
            assert (
                gate.inverse().canonical_spec() == gate.canonical_spec()
            )

    def test_shift_inverse_is_complementary_shift(self):
        assert (
            shift_gate(3, 1).inverse().canonical_spec()
            == shift_gate(3, 2).canonical_spec()
        )

    def test_phase_inverse_negates_angle(self):
        assert (
            phase_gate(3, 2, 0.5).inverse().canonical_spec()
            == phase_gate(3, 2, -0.5).canonical_spec()
        )

    def test_clock_inverse_round_trips_through_registry(self):
        gate = clock_gate(3, 1)
        inverted = gate.inverse()
        # The inverse keeps a semantic, serializable spec (clock at the
        # negated power), not an opaque dagger.
        assert inverted.spec().name == "clock"
        rebuilt = GATE_REGISTRY.build(inverted.spec())
        assert np.allclose(
            rebuilt.unitary() @ gate.unitary(), np.eye(3), atol=1e-9
        )

    def test_inverse_spec_unknown_name_returns_none(self):
        assert inverse_spec(GateSpec("no-such-gate", (), (2,))) is None

    def test_semantic_inverse_skips_structural_gates(self):
        bare = MatrixGate(np.eye(2), (2,), name="opaque")
        assert semantic_inverse(bare) is None


class TestStructuralFallback:
    def test_matrix_gate_falls_back_to_dagger(self):
        gate = MatrixGate(
            np.array([[1, 0], [0, 1j]]), (2,), name="custom"
        )
        inverted = gate.inverse()
        assert inverted.name == "custom^-1"
        assert np.allclose(
            inverted.unitary() @ gate.unitary(), np.eye(2), atol=1e-12
        )

    def test_phased_gate_inverse_conjugates_phases(self):
        gate = PhasedGate([1, 1j, -1], (3,), "diag")
        assert np.allclose(
            gate.inverse().unitary() @ gate.unitary(),
            np.eye(3),
            atol=1e-12,
        )
