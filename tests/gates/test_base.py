"""Tests for the gate abstractions."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, NotClassicalError
from repro.gates.base import (
    PermutationGate,
    PhasedGate,
    index_to_values,
    values_to_index,
)
from repro.gates.qubit import H, X
from repro.qudits import Qudit


class TestMixedRadix:
    def test_roundtrip_qutrits(self):
        dims = (3, 3, 3)
        for index in range(27):
            values = index_to_values(index, dims)
            assert values_to_index(values, dims) == index

    def test_first_wire_most_significant(self):
        assert values_to_index((1, 0), (2, 2)) == 2
        assert values_to_index((0, 1), (2, 2)) == 1

    def test_mixed_dimensions(self):
        dims = (2, 3)
        assert values_to_index((1, 2), dims) == 5
        assert index_to_values(5, dims) == (1, 2)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            values_to_index((2,), (2,))


class TestPermutationGate:
    def test_unitary_matches_mapping(self):
        gate = PermutationGate([1, 2, 0], (3,), "shift")
        u = gate.unitary()
        assert np.allclose(u @ np.eye(3)[:, 0], np.eye(3)[:, 1])

    def test_classical_action(self):
        gate = PermutationGate([1, 2, 0], (3,), "shift")
        assert gate.classical_action((0,)) == (1,)
        assert gate.classical_action((2,)) == (0,)

    def test_inverse_roundtrip(self):
        gate = PermutationGate([1, 2, 0], (3,), "shift")
        inv = gate.inverse()
        for v in range(3):
            forward = gate.classical_action((v,))
            assert inv.classical_action(forward) == (v,)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            PermutationGate([0, 0, 1], (3,), "bad")

    def test_is_classical(self):
        assert PermutationGate([0, 1], (2,), "id").is_classical


class TestPhasedGate:
    def test_diagonal_unitary(self):
        gate = PhasedGate([1, 1j, -1], (3,), "phases")
        assert np.allclose(gate.unitary(), np.diag([1, 1j, -1]))

    def test_rejects_non_unit_phases(self):
        with pytest.raises(ValueError):
            PhasedGate([1, 0.5], (2,), "bad")

    def test_inverse_conjugates(self):
        gate = PhasedGate([1, 1j], (2,), "s")
        assert np.allclose(
            gate.inverse().unitary(), np.diag([1, -1j])
        )

    def test_identity_phase_is_classical(self):
        assert PhasedGate([1, 1], (2,), "id").is_classical

    def test_nontrivial_phase_is_not_classical(self):
        gate = PhasedGate([1, 1j], (2,), "s")
        assert not gate.is_classical
        with pytest.raises(NotClassicalError):
            gate.classical_action((1,))


class TestGateProtocol:
    def test_num_qudits_and_total_dim(self):
        gate = PermutationGate(list(range(6)), (2, 3), "id")
        assert gate.num_qudits == 2
        assert gate.total_dim == 6

    def test_default_inverse_via_matrix(self):
        inv = H.inverse()
        assert np.allclose(inv.unitary() @ H.unitary(), np.eye(2), atol=1e-9)

    def test_on_builds_operation(self):
        wire = Qudit(0, 2)
        op = X.on(wire)
        assert op.qudits == (wire,)

    def test_validate_wires_arity(self):
        with pytest.raises(DimensionMismatchError):
            X.validate_wires([Qudit(0, 2), Qudit(1, 2)])

    def test_validate_wires_dimension(self):
        with pytest.raises(DimensionMismatchError):
            X.validate_wires([Qudit(0, 3)])
