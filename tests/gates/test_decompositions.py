"""Tests for gate decompositions — the compositional bedrock.

Every construction's correctness reduces to these identities, so they are
checked exhaustively over activation values and against random targets.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import DecompositionError
from repro.gates.controlled import ControlledGate
from repro.gates.decompositions import (
    decompose_all,
    decompose_controlled_controlled_u,
    decompose_operation,
    toffoli_to_cnots,
    two_controlled_qubit_u,
)
from repro.gates.matrix import MatrixGate
from repro.gates.qubit import TOFFOLI, X
from repro.gates.qutrit import X01, X02, X_PLUS_1
from repro.linalg import allclose_up_to_global_phase, random_unitary
from repro.qudits import Qudit


def circuit_unitary(ops, wires):
    return Circuit(ops).unitary(wires)


class TestToffoliToCnots:
    def test_matches_toffoli_exactly(self):
        a, b, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 2)
        u = circuit_unitary(toffoli_to_cnots(a, b, t), [a, b, t])
        assert np.allclose(u, TOFFOLI.unitary(), atol=1e-9)

    def test_uses_six_cnots(self):
        a, b, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 2)
        ops = toffoli_to_cnots(a, b, t)
        two_qubit = [op for op in ops if op.num_qudits == 2]
        assert len(two_qubit) == 6
        assert len(ops) == 15


class TestTwoControlledQubitU:
    @pytest.mark.parametrize("values", [(1, 1), (0, 1), (1, 0), (0, 0)])
    def test_all_activation_values(self, values):
        a, b, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 2)
        ops = two_controlled_qubit_u(a, b, t, X, values)
        u = circuit_unitary(ops, [a, b, t])
        ref = ControlledGate(X, (2, 2), values).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_random_target_unitary(self):
        rng = np.random.default_rng(11)
        target_u = MatrixGate(random_unitary(2, rng), (2,), "R")
        a, b, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 2)
        ops = two_controlled_qubit_u(a, b, t, target_u)
        u = circuit_unitary(ops, [a, b, t])
        ref = ControlledGate(target_u, (2, 2)).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_five_two_qubit_gates(self):
        a, b, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 2)
        ops = two_controlled_qubit_u(a, b, t, X)
        assert sum(1 for op in ops if op.num_qudits == 2) == 5


class TestCubeRootCascade:
    """The 7-gate qutrit CC-U decomposition behind the tree construction."""

    @pytest.mark.parametrize(
        "values",
        [(1, 1), (2, 2), (1, 2), (2, 1), (0, 1), (0, 2), (2, 0), (0, 0)],
    )
    def test_all_qutrit_activation_pairs(self, values):
        q0, q1, t = Qudit(0, 3), Qudit(1, 3), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, X_PLUS_1, values)
        u = circuit_unitary(ops, [q0, q1, t])
        ref = ControlledGate(X_PLUS_1, (3, 3), values).unitary()
        assert allclose_up_to_global_phase(u, ref)

    @pytest.mark.parametrize("target", [X01, X02, X_PLUS_1])
    def test_tree_target_gates(self, target):
        q0, q1, t = Qudit(0, 3), Qudit(1, 3), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, target, (2, 2))
        u = circuit_unitary(ops, [q0, q1, t])
        ref = ControlledGate(target, (3, 3), (2, 2)).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_random_qutrit_target(self):
        rng = np.random.default_rng(13)
        target = MatrixGate(random_unitary(3, rng), (3,), "R3")
        q0, q1, t = Qudit(0, 3), Qudit(1, 3), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, target, (1, 2))
        u = circuit_unitary(ops, [q0, q1, t])
        ref = ControlledGate(target, (3, 3), (1, 2)).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_mixed_dims_qubit_first_control(self):
        q0, q1, t = Qudit(0, 2), Qudit(1, 3), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, X01, (1, 2))
        u = circuit_unitary(ops, [q0, q1, t])
        ref = ControlledGate(X01, (2, 3), (1, 2)).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_mixed_dims_qubit_second_control_swaps_roles(self):
        q0, q1, t = Qudit(0, 3), Qudit(1, 2), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, X01, (2, 1))
        u = circuit_unitary(ops, [q0, q1, t])
        ref = ControlledGate(X01, (3, 2), (2, 1)).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_seven_two_qudit_gates(self):
        q0, q1, t = Qudit(0, 3), Qudit(1, 3), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, X_PLUS_1, (1, 1))
        assert len(ops) == 7
        assert all(op.num_qudits == 2 for op in ops)

    def test_qubit_controls_with_qutrit_target_use_barenco(self):
        # Both controls are qubits, so the Barenco 5-gate path applies;
        # its exponent algebra is target-dimension agnostic.
        q0, q1, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 3)
        ops = decompose_controlled_controlled_u(q0, q1, t, X01, (1, 1))
        u = circuit_unitary(ops, [q0, q1, t])
        ref = ControlledGate(X01, (2, 2), (1, 1)).unitary()
        assert allclose_up_to_global_phase(u, ref)

    def test_qubit_controls_reject_value_two(self):
        q0, q1, t = Qudit(0, 2), Qudit(1, 2), Qudit(2, 2)
        with pytest.raises(DecompositionError):
            decompose_controlled_controlled_u(q0, q1, t, X, (1, 2))


class TestDispatch:
    def test_small_ops_pass_through(self):
        t = Qudit(0, 3)
        op = X01.on(t)
        assert decompose_operation(op) == [op]

    def test_three_qutrit_gate_lowered(self):
        gate = ControlledGate(X_PLUS_1, (3, 3), (1, 1))
        wires = [Qudit(0, 3), Qudit(1, 3), Qudit(2, 3)]
        lowered = decompose_operation(gate.on(*wires))
        assert all(op.num_qudits <= 2 for op in lowered)

    def test_wider_gates_rejected(self):
        gate = ControlledGate(X, (2, 2, 2))
        wires = [Qudit(i, 2) for i in range(4)]
        with pytest.raises(DecompositionError):
            decompose_operation(gate.on(*wires))

    def test_decompose_all_flattens(self):
        gate = ControlledGate(X_PLUS_1, (3, 3), (2, 2))
        wires = [Qudit(0, 3), Qudit(1, 3), Qudit(2, 3)]
        ops = decompose_all([gate.on(*wires), X01.on(wires[0])])
        assert len(ops) == 8  # 7 lowered + 1 passthrough
