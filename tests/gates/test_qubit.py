"""Tests for the binary gate library."""

import numpy as np
import pytest

from repro.gates.qubit import (
    CNOT,
    CZ,
    H,
    P,
    RX,
    RY,
    RZ,
    S,
    S_DAG,
    SQRT_X,
    SQRT_X_DAG,
    SWAP,
    T,
    T_DAG,
    TOFFOLI,
    X,
    Y,
    Z,
    controlled_power_of_x,
    power_of_x,
)
from repro.linalg import allclose_up_to_global_phase, is_unitary


class TestPaulis:
    def test_x_flips(self):
        assert X.classical_action((0,)) == (1,)
        assert X.classical_action((1,)) == (0,)

    def test_xyz_anticommutation(self):
        x, y, z = X.unitary(), Y.unitary(), Z.unitary()
        assert np.allclose(x @ y + y @ x, 0)
        assert np.allclose(x @ z + z @ x, 0)

    def test_y_equals_ixz(self):
        assert np.allclose(Y.unitary(), 1j * X.unitary() @ Z.unitary())

    def test_paulis_square_to_identity(self):
        for gate in (X, Y, Z):
            u = gate.unitary()
            assert np.allclose(u @ u, np.eye(2))


class TestCliffordsAndPhases:
    def test_hadamard_conjugates_x_to_z(self):
        h = H.unitary()
        assert np.allclose(h @ X.unitary() @ h, Z.unitary(), atol=1e-9)

    def test_s_squares_to_z(self):
        s = S.unitary()
        assert np.allclose(s @ s, Z.unitary())

    def test_t_squares_to_s(self):
        t = T.unitary()
        assert np.allclose(t @ t, S.unitary())

    def test_daggers(self):
        assert np.allclose(S.unitary() @ S_DAG.unitary(), np.eye(2))
        assert np.allclose(T.unitary() @ T_DAG.unitary(), np.eye(2))

    def test_p_gate_generalises_s_and_t(self):
        assert np.allclose(P(np.pi / 2).unitary(), S.unitary())
        assert np.allclose(P(np.pi / 4).unitary(), T.unitary())

    def test_sqrt_x_squares_to_x(self):
        v = SQRT_X.unitary()
        assert np.allclose(v @ v, X.unitary())
        assert np.allclose(
            SQRT_X.unitary() @ SQRT_X_DAG.unitary(), np.eye(2)
        )


class TestRotations:
    @pytest.mark.parametrize("theta", [0.1, np.pi / 3, np.pi, 2.7])
    def test_rotations_are_unitary(self, theta):
        for rot in (RX, RY, RZ):
            assert is_unitary(rot(theta).unitary())

    def test_rx_pi_is_x_up_to_phase(self):
        assert allclose_up_to_global_phase(RX(np.pi).unitary(), X.unitary())

    def test_rz_pi_is_z_up_to_phase(self):
        assert allclose_up_to_global_phase(RZ(np.pi).unitary(), Z.unitary())

    def test_rotation_composition(self):
        assert np.allclose(
            RY(0.3).unitary() @ RY(0.4).unitary(),
            RY(0.7).unitary(),
            atol=1e-9,
        )


class TestPowerOfX:
    def test_power_one_is_x(self):
        assert power_of_x(1) is X

    def test_half_power_matches_sqrt(self):
        assert allclose_up_to_global_phase(
            power_of_x(0.5).unitary(), SQRT_X.unitary()
        )

    def test_small_angle_power_composes(self):
        v = power_of_x(1 / 8).unitary()
        acc = np.eye(2)
        for _ in range(8):
            acc = v @ acc
        assert allclose_up_to_global_phase(acc, X.unitary())

    def test_controlled_power_is_two_qubit(self):
        gate = controlled_power_of_x(0.25)
        assert gate.dims == (2, 2)
        assert is_unitary(gate.unitary())


class TestMultiQubit:
    def test_cnot_truth_table(self):
        assert CNOT.classical_action((0, 0)) == (0, 0)
        assert CNOT.classical_action((0, 1)) == (0, 1)
        assert CNOT.classical_action((1, 0)) == (1, 1)
        assert CNOT.classical_action((1, 1)) == (1, 0)

    def test_cz_is_diagonal(self):
        assert np.allclose(CZ.unitary(), np.diag([1, 1, 1, -1]))

    def test_toffoli_truth_table(self):
        for a in (0, 1):
            for b in (0, 1):
                for t in (0, 1):
                    out = TOFFOLI.classical_action((a, b, t))
                    assert out == (a, b, t ^ (a & b))

    def test_swap(self):
        assert SWAP.classical_action((0, 1)) == (1, 0)
        assert SWAP.classical_action((1, 0)) == (0, 1)
