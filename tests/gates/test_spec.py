"""Tests for GateSpec, the gate registry, and gate round-trips."""

import numpy as np
import pytest

from repro.gates import (
    CNOT,
    CZ,
    GATE_REGISTRY,
    SWAP,
    TOFFOLI,
    ControlledGate,
    GateRegistry,
    GateSpec,
    H,
    MatrixGate,
    P,
    PermutationGate,
    PhasedGate,
    RX,
    RY,
    RZ,
    S,
    S_DAG,
    SQRT_X,
    SQRT_X_DAG,
    T,
    T_DAG,
    X,
    Y,
    Z,
    clock_gate,
    controlled,
    controlled_power_of_x,
    embedded_qubit_gate,
    identity_gate,
    level_swap,
    root_power_gate,
    shift_gate,
)
from repro.gates.qubit import IDENTITY2, power_of_x
from repro.gates.qutrit import (
    IDENTITY3,
    QUTRIT_H,
    X01,
    X02,
    X12,
    X_MINUS_1,
    X_PLUS_1,
    Z3,
    fourier_gate,
    phase_gate,
)

#: Every gate constructible from the public API, named for test ids.
GATE_CATALOG = {
    "X": X,
    "Y": Y,
    "Z": Z,
    "H": H,
    "S": S,
    "S_DAG": S_DAG,
    "T": T,
    "T_DAG": T_DAG,
    "SQRT_X": SQRT_X,
    "SQRT_X_DAG": SQRT_X_DAG,
    "IDENTITY2": IDENTITY2,
    "CNOT": CNOT,
    "CZ": CZ,
    "TOFFOLI": TOFFOLI,
    "SWAP": SWAP,
    "P": P(0.725),
    "RX": RX(1.234),
    "RY": RY(-0.5),
    "RZ": RZ(np.pi / 7),
    "X_pow": power_of_x(0.125),
    "CX_pow": controlled_power_of_x(0.25),
    "X01": X01,
    "X02": X02,
    "X12": X12,
    "X_PLUS_1": X_PLUS_1,
    "X_MINUS_1": X_MINUS_1,
    "Z3": Z3,
    "QUTRIT_H": QUTRIT_H,
    "IDENTITY3": IDENTITY3,
    "identity5": identity_gate(5),
    "level_swap": level_swap(4, 1, 3),
    "shift": shift_gate(5, 2),
    "clock": clock_gate(3, 2),
    "fourier": fourier_gate(4),
    "phase": phase_gate(3, 2, 0.321),
    "embedded": embedded_qubit_gate(H, 3, (0, 2)),
    "embedded_param": embedded_qubit_gate(RX(0.77), 4, (1, 3)),
    "controlled_val2": ControlledGate(X01, (3,), (2,)),
    "controlled_nested": controlled(ControlledGate(X_PLUS_1, (3,), (0,))),
    "root_power": root_power_gate(X, 2, 3, "X^(2/3)"),
    "root_power_dag": root_power_gate(QUTRIT_H, -1, 3, "F3^(-1/3)"),
    "matrix_fallback": MatrixGate(np.eye(4), (2, 2), name="custom"),
    "perm_fallback": PermutationGate([2, 0, 1, 3], (2, 2), "cycle"),
    "phased_fallback": PhasedGate([1, 1j, -1, -1j], (2, 2), "diag"),
}


@pytest.mark.parametrize("gate", GATE_CATALOG.values(), ids=GATE_CATALOG)
class TestCatalogRoundTrip:
    def test_spec_round_trip(self, gate):
        rebuilt = GATE_REGISTRY.build(gate.spec())
        assert rebuilt == gate
        assert hash(rebuilt) == hash(gate)
        assert np.allclose(rebuilt.unitary(), gate.unitary())

    def test_json_round_trip(self, gate):
        spec = GateSpec.from_json(gate.spec().to_json())
        assert spec == gate.spec()
        assert GATE_REGISTRY.build(spec) == gate

    def test_dims_preserved(self, gate):
        assert GATE_REGISTRY.build(gate.spec()).dims == gate.dims


class TestGateSpec:
    def test_value_semantics(self):
        a = GateSpec("shift", (1,), (3,))
        b = GateSpec("shift", (1,), (3,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != GateSpec("shift", (2,), (3,))

    def test_params_frozen_to_tuples(self):
        spec = GateSpec("x", ([1, 2], 3.0), (2,))
        assert spec.params == ((1, 2), 3.0)

    def test_complex_params_round_trip(self):
        spec = GateSpec("x", (1 + 2j, (0.5, -1j)), (2,))
        assert GateSpec.from_json(spec.to_json()) == spec

    def test_nested_spec_params_round_trip(self):
        inner = GateSpec("X", (), (2,))
        outer = GateSpec("__controlled__", (inner, (1,)), (2, 2))
        assert GateSpec.from_json(outer.to_json()) == outer

    def test_rejects_unserializable_params(self):
        with pytest.raises(TypeError):
            GateSpec("x", (object(),), (2,))


class TestRegistry:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no gate constructor"):
            GATE_REGISTRY.build(GateSpec("no_such_gate", (), (2,)))

    def test_duplicate_registration_raises(self):
        registry = GateRegistry()
        registry.register("g", lambda spec: X)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("g", lambda spec: X)

    def test_names_sorted(self):
        names = list(GATE_REGISTRY.names())
        assert names == sorted(names)
        assert "X" in GATE_REGISTRY
        assert "__matrix__" in GATE_REGISTRY


class TestStructuralIdentity:
    def test_hand_built_equals_registered_constant(self):
        assert PermutationGate([1, 0], (2,), "X") == X
        assert ControlledGate(X, (2,)) == CNOT

    def test_same_name_different_matrix_differ(self):
        a = MatrixGate(np.eye(2), (2,), name="G")
        b = MatrixGate(np.diag([1, -1]), (2,), name="G")
        assert a != b
        assert a.canonical_spec() != b.canonical_spec()

    def test_display_name_does_not_define_identity(self):
        assert X.inverse() == X
        assert MatrixGate(np.eye(2), (2,), "a") == MatrixGate(
            np.eye(2), (2,), "b"
        )

    def test_controlled_identity_includes_values_and_dims(self):
        base = ControlledGate(X01, (3,), (1,))
        assert base != ControlledGate(X01, (3,), (2,))
        assert base != ControlledGate(X01, (4,), (1,))

    def test_serialization_keeps_display_name(self):
        gate = MatrixGate(np.eye(2), (2,), name="my-name")
        rebuilt = GATE_REGISTRY.build(
            GateSpec.from_json(gate.spec().to_json())
        )
        assert rebuilt.name == "my-name"
