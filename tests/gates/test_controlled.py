"""Tests for controlled gates with arbitrary activation values."""

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, NotClassicalError
from repro.gates.controlled import ControlledGate, controlled
from repro.gates.qubit import H, X, Z
from repro.gates.qutrit import X01, X_PLUS_1, Z3
from repro.linalg import is_unitary


class TestConstruction:
    def test_default_control_values_are_ones(self):
        gate = ControlledGate(X, (2, 2))
        assert gate.control_values == (1, 1)

    def test_dims_are_controls_then_target(self):
        gate = ControlledGate(X01, (3, 2), (2, 0))
        assert gate.dims == (3, 2, 3)

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ControlledGate(X, (2,), (2,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            ControlledGate(X, (2, 2), (1,))

    def test_needs_a_control(self):
        with pytest.raises(ValueError):
            ControlledGate(X, ())


class TestUnitary:
    def test_cnot_block_structure(self):
        u = ControlledGate(X, (2,)).unitary()
        expected = np.eye(4, dtype=complex)
        expected[2:, 2:] = X.unitary()
        assert np.allclose(u, expected)

    def test_zero_valued_control_block(self):
        u = ControlledGate(X, (2,), (0,)).unitary()
        expected = np.eye(4, dtype=complex)
        expected[:2, :2] = X.unitary()
        assert np.allclose(u, expected)

    def test_two_controlled_on_twos(self):
        # The paper's interior tree gate: |2>,|2>-controlled X+1.
        gate = ControlledGate(X_PLUS_1, (3, 3), (2, 2))
        u = gate.unitary()
        assert is_unitary(u)
        # Active block is the last 3x3 (control index 2*3+2 = 8).
        assert np.allclose(u[24:, 24:], X_PLUS_1.unitary())
        assert np.allclose(u[:24, :24], np.eye(24))

    def test_controlled_is_unitary_for_nonclassical_sub(self):
        assert is_unitary(ControlledGate(H, (3,), (2,)).unitary())


class TestClassicalAction:
    def test_fires_only_on_match(self):
        gate = ControlledGate(X_PLUS_1, (3,), (2,))
        assert gate.classical_action((2, 1)) == (2, 2)
        assert gate.classical_action((1, 1)) == (1, 1)
        assert gate.classical_action((0, 1)) == (0, 1)

    def test_multi_control_requires_all(self):
        gate = ControlledGate(X, (2, 2), (1, 1))
        assert gate.classical_action((1, 0, 0)) == (1, 0, 0)
        assert gate.classical_action((1, 1, 0)) == (1, 1, 1)

    def test_zero_value_controls(self):
        gate = ControlledGate(X, (2, 2), (0, 0))
        assert gate.classical_action((0, 0, 0)) == (0, 0, 1)
        assert gate.classical_action((0, 1, 0)) == (0, 1, 0)

    def test_nonclassical_sub_gate_raises_even_when_inactive(self):
        gate = ControlledGate(H, (2,), (1,))
        with pytest.raises(NotClassicalError):
            gate.classical_action((0, 0))

    def test_permutation_table_matches_unitary(self):
        gate = ControlledGate(X01, (3,), (2,))
        from repro.linalg import permutation_of

        assert gate._permutation() == permutation_of(gate.unitary())


class TestInverse:
    def test_inverse_keeps_controls(self):
        gate = ControlledGate(X_PLUS_1, (3, 3), (1, 2))
        inv = gate.inverse()
        assert inv.control_values == (1, 2)
        assert np.allclose(
            inv.unitary() @ gate.unitary(), np.eye(27), atol=1e-9
        )

    def test_self_inverse_controlled_z(self):
        gate = ControlledGate(Z, (2,))
        assert np.allclose(
            gate.unitary() @ gate.unitary(), np.eye(4)
        )


class TestConveniences:
    def test_controlled_defaults(self):
        gate = controlled(X)
        assert gate.control_values == (1,)
        assert gate.control_dims == (2,)

    def test_controlled_infers_qutrit_for_value_two(self):
        gate = controlled(Z3, control_values=(2,))
        assert gate.control_dims == (3,)

    def test_name_mentions_values(self):
        assert "2" in ControlledGate(X01, (3,), (2,)).name
