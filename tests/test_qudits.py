"""Tests for qudit wire identifiers."""

import pytest

from repro.exceptions import DimensionMismatchError
from repro.qudits import (
    QUBIT_D,
    QUTRIT_D,
    Qudit,
    check_distinct,
    qubits,
    qudit_line,
    qutrits,
    total_dimension,
)


class TestQudit:
    def test_default_dimension_is_qutrit(self):
        assert Qudit(0).dimension == QUTRIT_D

    def test_equality_includes_dimension(self):
        assert Qudit(3, 2) != Qudit(3, 3)
        assert Qudit(3, 2) == Qudit(3, 2)

    def test_hashable_and_usable_in_sets(self):
        wires = {Qudit(0, 2), Qudit(0, 2), Qudit(0, 3)}
        assert len(wires) == 2

    def test_ordering_by_index(self):
        assert sorted([Qudit(2, 2), Qudit(0, 2)])[0].index == 0

    def test_rejects_dimension_below_two(self):
        with pytest.raises(DimensionMismatchError):
            Qudit(0, 1)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Qudit(-1, 2)

    def test_levels_range(self):
        assert list(Qudit(0, 3).levels) == [0, 1, 2]


class TestFactories:
    def test_qubits_dimensions_and_indices(self):
        wires = qubits(3)
        assert [w.dimension for w in wires] == [2, 2, 2]
        assert [w.index for w in wires] == [0, 1, 2]

    def test_qutrits_start_offset(self):
        wires = qutrits(2, start=5)
        assert [w.index for w in wires] == [5, 6]
        assert all(w.dimension == QUTRIT_D for w in wires)

    def test_qudit_line_mixed_dimensions(self):
        wires = qudit_line([2, 3, 5])
        assert [w.dimension for w in wires] == [2, 3, 5]

    def test_qubit_constant(self):
        assert QUBIT_D == 2


class TestHelpers:
    def test_check_distinct_accepts_unique(self):
        check_distinct(qubits(4))

    def test_check_distinct_rejects_duplicates(self):
        wire = Qudit(0, 2)
        with pytest.raises(ValueError):
            check_distinct([wire, wire])

    def test_total_dimension_is_product(self):
        assert total_dimension(qudit_line([2, 3, 4])) == 24

    def test_total_dimension_empty(self):
        assert total_dimension([]) == 1
