"""Tests for the optimizer cost models."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates import CNOT, H, MatrixGate, S, T, T_DAG
from repro.gates.qutrit import QUTRIT_H, X01, X_PLUS_1, phase_gate
from repro.optimize import (
    COST_MODELS,
    CircuitCost,
    CostModel,
    GateCountCostModel,
    QutritCliffordTCostModel,
    resolve_cost_model,
)
from repro.qudits import qubits, qutrits


class TestCircuitCost:
    def test_score_orders_two_qudit_first(self):
        light = CircuitCost(
            depth=100, total_gates=100, two_qudit_gates=1,
            non_clifford_gates=50,
        )
        heavy = CircuitCost(
            depth=1, total_gates=2, two_qudit_gates=2,
            non_clifford_gates=0,
        )
        assert light.score() < heavy.score()

    def test_depth_breaks_full_ties(self):
        shallow = CircuitCost(
            depth=3, total_gates=5, two_qudit_gates=2,
            non_clifford_gates=1,
        )
        deep = CircuitCost(
            depth=4, total_gates=5, two_qudit_gates=2,
            non_clifford_gates=1,
        )
        assert shallow.score() < deep.score()

    def test_to_dict_round_trips_fields(self):
        cost = CircuitCost(
            depth=2, total_gates=3, two_qudit_gates=1,
            non_clifford_gates=0,
        )
        assert cost.to_dict() == {
            "depth": 2,
            "total_gates": 3,
            "two_qudit_gates": 1,
            "non_clifford_gates": 0,
        }


class TestQutritCliffordT:
    def test_qubit_clifford_set(self):
        model = QutritCliffordTCostModel()
        for gate in (H, S, CNOT, X01):
            assert model.is_clifford(gate), gate.name

    def test_t_gates_are_non_clifford(self):
        model = QutritCliffordTCostModel()
        assert not model.is_clifford(T)
        assert not model.is_clifford(T_DAG)

    def test_qutrit_shift_and_hadamard_are_clifford(self):
        model = QutritCliffordTCostModel()
        assert model.is_clifford(X_PLUS_1)
        assert model.is_clifford(QUTRIT_H)

    def test_qutrit_phase_grid(self):
        model = QutritCliffordTCostModel()
        # 2 pi / 3 sits on the qutrit Clifford grid; 2 pi / 9 is the
        # T-level grid; an irrational angle is neither.
        assert model.is_clifford(phase_gate(3, 1, 2 * np.pi / 3))
        assert not model.is_clifford(phase_gate(3, 1, 2 * np.pi / 9))
        assert not model.is_clifford(phase_gate(3, 1, 0.123))

    def test_opaque_wide_matrix_counts_as_non_clifford(self):
        model = QutritCliffordTCostModel()
        wide = np.kron(H.unitary(), np.eye(4))
        gate = MatrixGate(wide, (2, 2, 2), name="opaque3")
        assert not model.is_clifford(gate)

    def test_cost_counts_a_mixed_circuit(self):
        a, b = qubits(2)
        circuit = Circuit()
        circuit.append(H.on(a))
        circuit.append(T.on(b))
        circuit.append(CNOT.on(a, b))
        cost = QutritCliffordTCostModel().cost(circuit)
        assert cost.total_gates == 3
        assert cost.two_qudit_gates == 1
        assert cost.non_clifford_gates == 1
        assert cost.depth == circuit.depth


class TestResolution:
    def test_default_is_qutrit_clifford_t(self):
        assert (
            resolve_cost_model(None).name
            == QutritCliffordTCostModel().name
        )

    def test_names_resolve(self):
        for name in COST_MODELS:
            model = resolve_cost_model(name)
            assert isinstance(model, CostModel)
            assert model.name == name

    def test_gate_count_model_ignores_clifford_structure(self):
        a, = qutrits(1)
        circuit = Circuit()
        circuit.append(X_PLUS_1.on(a))
        cost = GateCountCostModel().cost(circuit)
        assert cost.non_clifford_gates == 0
        assert cost.total_gates == 1

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_cost_model("no-such-model")
