"""Optimizer bench suite: records, headline, and the CI regression gate."""

import json
from pathlib import Path

import pytest

from repro.analysis.bench import (
    OPT_SCHEMA,
    OPT_SMOKE_WIDTHS,
    OPT_WIDTHS,
    bench_opt_case,
    check_opt_regression,
    opt_record_key,
    render_opt_report,
    run_opt_bench,
    write_report,
)


@pytest.fixture(scope="module")
def opt_report():
    return run_opt_bench(smoke=True)


@pytest.mark.slow
class TestOptBench:
    def test_report_shape(self, opt_report, tmp_path):
        assert opt_report["schema"] == OPT_SCHEMA
        assert opt_report["smoke"] is True
        assert opt_report["records"]
        path = write_report(opt_report, tmp_path / "opt.json")
        assert json.loads(path.read_text())["schema"] == OPT_SCHEMA
        assert "optimizer bench" in render_opt_report(opt_report)

    def test_smoke_widths_are_a_prefix_of_full(self):
        assert OPT_WIDTHS[: len(OPT_SMOKE_WIDTHS)] == OPT_SMOKE_WIDTHS

    def test_records_are_complete_and_consistent(self, opt_report):
        for record in opt_report["records"]:
            assert record["gates_after"] <= record["gates_before"]
            assert record["gates_removed"] == (
                record["gates_before"] - record["gates_after"]
            )
            assert record["depth_removed"] == (
                record["depth_before"] - record["depth_after"]
            )
            assert record["verified"] in (
                None, "classical", "statevector", "skipped"
            )
            assert record["seconds"] > 0

    def test_every_pass_wins_somewhere(self, opt_report):
        # The tentpole acceptance claim: each rewrite pass improves at
        # least one Figure 9/10 construction.
        wins = opt_report["headline"]["pass_wins"]
        for name in ("cancel-inverses", "fuse-phases", "pack-commuting"):
            assert wins.get(name), f"{name} never accepted"

    def test_changed_circuits_are_oracle_verified(self, opt_report):
        # Every record that shrank within oracle reach must have been
        # equivalence-checked (auto mode only skips infeasible widths).
        for record in opt_report["records"]:
            if record["gates_removed"] or record["depth_removed"]:
                assert record["verified"] in (
                    "classical", "statevector", "skipped"
                )

    def test_committed_report_matches_fresh_run(self, opt_report):
        # The repo's committed BENCH_opt.json must agree with a fresh
        # smoke run on the deterministic metrics (the CI gate's premise).
        committed_path = Path(__file__).parents[2] / "BENCH_opt.json"
        committed = json.loads(committed_path.read_text())
        assert committed["schema"] == OPT_SCHEMA
        assert check_opt_regression(committed, opt_report) == []
        baseline = {
            opt_record_key(r): r for r in committed["records"]
        }
        joined = 0
        for record in opt_report["records"]:
            base = baseline.get(opt_record_key(record))
            if base is None:
                continue
            joined += 1
            assert record["gates_removed"] == base["gates_removed"]
            assert record["depth_removed"] == base["depth_removed"]
        assert joined == len(opt_report["records"])

    def test_committed_full_report_proves_pass_wins(self):
        committed_path = Path(__file__).parents[2] / "BENCH_opt.json"
        committed = json.loads(committed_path.read_text())
        wins = committed["headline"]["pass_wins"]
        for name in ("cancel-inverses", "fuse-phases", "pack-commuting"):
            assert wins.get(name), f"{name} has no committed win"


class TestOptCase:
    def test_single_case_record(self):
        record = bench_opt_case("he_tree", 3, "logical")
        assert record["construction"] == "he_tree"
        assert record["stage"] == "logical"
        assert record["gates_removed"] > 0
        assert record["verified"] == "statevector"
        assert opt_record_key(record) == ("he_tree", 3, "logical")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            bench_opt_case("he_tree", 3, "no-such-stage")


class TestOptRegressionCheck:
    def _report(self, gates_removed, depth_removed, verified):
        return {
            "records": [
                {
                    "construction": "he_tree",
                    "num_controls": 5,
                    "stage": "logical",
                    "gates_removed": gates_removed,
                    "depth_removed": depth_removed,
                    "verified": verified,
                }
            ]
        }

    def test_identical_reports_pass(self):
        report = self._report(40, 1, "statevector")
        assert check_opt_regression(report, report) == []

    def test_improved_reductions_pass(self):
        assert check_opt_regression(
            self._report(40, 1, "statevector"),
            self._report(44, 2, "statevector"),
        ) == []

    def test_shrunken_reduction_fails(self):
        failures = check_opt_regression(
            self._report(40, 1, "statevector"),
            self._report(39, 1, "statevector"),
        )
        assert len(failures) == 1
        assert "gates_removed" in failures[0]

    def test_verification_regression_fails(self):
        failures = check_opt_regression(
            self._report(40, 1, "statevector"),
            self._report(40, 1, "skipped"),
        )
        assert any("verification regressed" in f for f in failures)

    def test_oracle_swap_is_fine(self):
        assert check_opt_regression(
            self._report(40, 1, "statevector"),
            self._report(40, 1, "classical"),
        ) == []

    def test_unmatched_records_are_skipped(self):
        fresh = self._report(0, 0, None)
        fresh["records"][0]["num_controls"] = 99
        assert check_opt_regression(
            self._report(40, 1, "statevector"), fresh
        ) == []
