"""Tests for the RewriteEngine and the verified-equivalence oracles."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import OptimizationError
from repro.gates import CNOT, H, S, T, T_DAG
from repro.gates.qutrit import X01, X_MINUS_1, X_PLUS_1
from repro.optimize import (
    OptimizationError as ReexportedError,
    RewriteEngine,
    assert_equivalent,
    circuits_equivalent,
    equivalence_method,
    optimize_circuit,
    resolve_engine,
)
from repro.qudits import qubits, qutrits
from repro.toffoli.registry import construction_circuit


def _cancelable_circuit():
    a, b = qubits(2)
    circuit = Circuit()
    circuit.append(T.on(a))
    circuit.append(H.on(b))
    circuit.append(T_DAG.on(a))
    circuit.append(H.on(b))
    return circuit


class TestRewriteEngine:
    def test_fixpoint_removes_everything_cancelable(self):
        optimized, report = RewriteEngine().run(_cancelable_circuit())
        assert optimized.num_operations == 0
        assert report.gates_removed == 4
        assert report.cost_after.total_gates == 0

    def test_nothing_to_do_returns_original_object(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(H.on(a))
        optimized, report = RewriteEngine().run(circuit)
        assert optimized is circuit
        assert report.gates_removed == 0
        assert report.verified is None

    def test_verify_strict_runs_an_oracle(self):
        optimized, report = RewriteEngine(verify="strict").run(
            _cancelable_circuit()
        )
        assert report.verified in ("classical", "statevector")

    def test_verify_auto_skips_infeasible_widths(self):
        # 13 qubits with non-classical gates: no oracle fits.
        wires = qubits(13)
        circuit = Circuit()
        for w in wires:
            circuit.append(H.on(w))
        circuit.append(T.on(wires[0]))
        circuit.append(T_DAG.on(wires[0]))
        optimized, report = RewriteEngine(verify="auto").run(circuit)
        assert optimized.num_operations < circuit.num_operations
        assert report.verified == "skipped"

    def test_invalid_verify_mode_rejected(self):
        with pytest.raises(ValueError):
            RewriteEngine(verify="sometimes")

    def test_verify_true_aliases_strict(self):
        assert RewriteEngine(verify=True).verify == "strict"

    def test_report_totals_merge_iterations(self):
        _, report = RewriteEngine().run(_cancelable_circuit())
        totals = report.totals()
        assert totals["cancel-inverses"].gates_removed == 4
        assert report.iterations >= 1

    def test_report_serializes(self):
        import json

        _, report = RewriteEngine().run(_cancelable_circuit())
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["cost_before"]["total_gates"] == 4
        assert payload["cost_after"]["total_gates"] == 0

    def test_he_tree_reduction_is_verified(self):
        circuit = construction_circuit("he_tree", 3)
        optimized, report = RewriteEngine(verify="strict").run(circuit)
        assert report.gates_removed > 0
        assert report.verified == "statevector"

    def test_classical_circuit_uses_classical_oracle(self):
        a, b = qutrits(2)
        circuit = Circuit()
        circuit.append(X_PLUS_1.on(a))
        circuit.append(X01.on(b))
        circuit.append(X_MINUS_1.on(a))
        optimized, report = RewriteEngine(verify="strict").run(circuit)
        assert optimized.num_operations < circuit.num_operations
        assert report.verified == "classical"

    def test_one_shot_helper_matches_engine(self):
        circuit = _cancelable_circuit()
        optimized, report = optimize_circuit(circuit)
        assert optimized.num_operations == 0

    def test_max_iterations_validated(self):
        with pytest.raises(ValueError):
            RewriteEngine(max_iterations=0)


class TestResolveEngine:
    def test_none_and_false_mean_off(self):
        assert resolve_engine(None) is None
        assert resolve_engine(False) is None

    def test_true_gives_default_engine(self):
        engine = resolve_engine(True)
        assert [p.name for p in engine.passes] == [
            "cancel-inverses", "fuse-phases", "pack-commuting",
        ]

    def test_comma_string_selects_passes(self):
        engine = resolve_engine("cancel-inverses, fuse-phases")
        assert [p.name for p in engine.passes] == [
            "cancel-inverses", "fuse-phases",
        ]

    def test_engine_passes_through(self):
        engine = RewriteEngine()
        assert resolve_engine(engine) is engine

    def test_bad_type_raises(self):
        with pytest.raises(TypeError):
            resolve_engine(42)


class TestEquivalenceOracles:
    def test_equivalent_circuits_pass_both_oracles(self):
        a, = qubits(1)
        left = Circuit()
        left.append(H.on(a))
        left.append(H.on(a))
        right = Circuit()
        assert circuits_equivalent(left, right, wires=[a])

    def test_inequivalent_circuits_fail(self):
        a, = qubits(1)
        left = Circuit()
        left.append(H.on(a))
        right = Circuit()
        assert not circuits_equivalent(left, right, wires=[a])

    def test_global_phase_difference_is_detected(self):
        # The oracle compares amplitudes exactly: i*I is NOT the empty
        # circuit, even though they agree up to global phase.
        from repro.gates.base import PhasedGate

        a, = qubits(1)
        left = Circuit()
        left.append(PhasedGate([1j, 1j], (2,), "i*I").on(a))
        right = Circuit()
        assert not circuits_equivalent(left, right, wires=[a])

    def test_assert_equivalent_raises_with_context(self):
        a, = qubits(1)
        left = Circuit()
        left.append(H.on(a))
        right = Circuit()
        with pytest.raises(OptimizationError, match="my-pass"):
            assert_equivalent(left, right, wires=[a], context="my-pass")

    def test_method_selection(self):
        a, b = qutrits(2)
        classical = Circuit()
        classical.append(X01.on(a))
        classical.append(X_PLUS_1.on(b))
        dense = Circuit()
        dense.append(H.on(qubits(1)[0]))
        assert equivalence_method(classical, classical) == "classical"
        assert equivalence_method(dense, dense) == "statevector"

    def test_no_oracle_raises(self):
        wires = qubits(13)
        circuit = Circuit()
        for w in wires:
            circuit.append(H.on(w))
        with pytest.raises(OptimizationError):
            circuits_equivalent(circuit, circuit)

    def test_reexported_error_is_the_same_type(self):
        assert ReexportedError is OptimizationError
