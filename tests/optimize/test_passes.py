"""Tests for the rewrite passes over barrier-segmented circuits."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.gates import CNOT, H, S, S_DAG, T, T_DAG, X, Z
from repro.gates.base import PhasedGate
from repro.gates.qutrit import X01, X_MINUS_1, X_PLUS_1, phase_gate
from repro.optimize import (
    CancelAdjacentInverses,
    CommutationPacking,
    FuseDiagonalGates,
    circuits_equivalent,
    is_identity_gate,
    is_inverse_pair,
    resolve_passes,
)
from repro.qudits import qubits, qutrits


class TestInversePredicates:
    def test_named_dag_pair(self):
        assert is_inverse_pair(T, T_DAG)
        assert is_inverse_pair(T_DAG, T)
        assert not is_inverse_pair(T, S_DAG)

    def test_self_inverse(self):
        assert is_inverse_pair(H, H)
        assert is_inverse_pair(CNOT, CNOT)

    def test_qutrit_shift_pair(self):
        assert is_inverse_pair(X_PLUS_1, X_MINUS_1)
        assert not is_inverse_pair(X_PLUS_1, X_PLUS_1)

    def test_identity_gate_detection(self):
        assert is_identity_gate(PhasedGate([1, 1, 1], (3,), "noop"))
        assert not is_identity_gate(PhasedGate([1, -1], (2,), "Z'"))
        assert not is_identity_gate(X)


class TestCancelAdjacentInverses:
    def test_adjacent_pair_cancels(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(T.on(a))
        circuit.append(T_DAG.on(a))
        optimized, stats = CancelAdjacentInverses().run(circuit)
        assert optimized.num_operations == 0
        assert stats.applications == 1
        assert stats.gates_removed == 2

    def test_cancellation_through_commuting_spacer(self):
        a, b = qubits(2)
        circuit = Circuit()
        circuit.append(T.on(a))
        circuit.append(H.on(b))  # disjoint spacer
        circuit.append(T_DAG.on(a))
        optimized, stats = CancelAdjacentInverses().run(circuit)
        assert optimized.num_operations == 1
        assert [op.gate.name for op in optimized.all_operations()] == ["H"]

    def test_blocker_prevents_cancellation(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(T.on(a))
        circuit.append(H.on(a))  # blocks the walk
        circuit.append(T_DAG.on(a))
        optimized, stats = CancelAdjacentInverses().run(circuit)
        assert optimized is circuit
        assert stats.applications == 0

    def test_barrier_blocks_cancellation(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(T.on(a))
        circuit.barrier()
        circuit.append(T_DAG.on(a))
        optimized, _ = CancelAdjacentInverses().run(circuit)
        assert optimized is circuit

    def test_wire_order_must_match(self):
        a, b = qubits(2)
        circuit = Circuit()
        circuit.append(CNOT.on(a, b))
        circuit.append(CNOT.on(b, a))  # same wires, different roles
        optimized, _ = CancelAdjacentInverses().run(circuit)
        assert optimized is circuit

    def test_cascade_cancels_nested_pairs(self):
        a, = qutrits(1)
        circuit = Circuit()
        circuit.append(X_PLUS_1.on(a))
        circuit.append(X01.on(a))
        circuit.append(X01.on(a))
        circuit.append(X_MINUS_1.on(a))
        optimized, stats = CancelAdjacentInverses().run(circuit)
        assert optimized.num_operations == 0
        assert stats.applications == 2


class TestFuseDiagonalGates:
    def test_adjacent_phase_gates_fuse(self):
        a, = qutrits(1)
        circuit = Circuit()
        circuit.append(phase_gate(3, 1, 0.25).on(a))
        circuit.append(phase_gate(3, 2, 0.5).on(a))
        optimized, stats = FuseDiagonalGates().run(circuit)
        assert optimized.num_operations == 1
        assert stats.gates_fused == 1
        assert circuits_equivalent(circuit, optimized)

    def test_fusing_to_identity_drops_both(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(S.on(a))
        circuit.append(S_DAG.on(a))
        optimized, _ = FuseDiagonalGates().run(circuit)
        assert optimized.num_operations == 0

    def test_non_diagonal_partner_is_skipped(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(H.on(a))
        circuit.append(S.on(a))
        optimized, stats = FuseDiagonalGates().run(circuit)
        assert optimized is circuit
        assert stats.applications == 0

    def test_fuses_across_swapped_wire_order(self):
        # Diagonal two-qudit gates on the same wire *set* fuse even if
        # the operations list the wires differently.
        a, b = qubits(2)
        cz_phases = [1, 1, 1, -1]
        circuit = Circuit()
        circuit.append(PhasedGate(cz_phases, (2, 2), "CZ'").on(a, b))
        circuit.append(PhasedGate(cz_phases, (2, 2), "CZ'").on(b, a))
        optimized, stats = FuseDiagonalGates().run(circuit)
        assert stats.applications == 1
        assert circuits_equivalent(circuit, optimized)

    def test_fused_result_is_equivalent(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(T.on(a))
        circuit.append(S.on(a))
        circuit.append(Z.on(a))
        optimized, stats = FuseDiagonalGates().run(circuit)
        assert optimized.num_operations == 1
        assert circuits_equivalent(circuit, optimized)


class TestCommutationPacking:
    def test_commuting_tail_packs_left(self):
        a, b = qubits(2)
        circuit = Circuit()
        circuit.append(H.on(a))
        circuit.append(H.on(a))
        circuit.append(T.on(b))  # commutes with everything on wire a
        assert circuit.depth == 2
        optimized, stats = CommutationPacking().run(circuit)
        assert stats.applications >= 1
        assert optimized.depth <= circuit.depth
        assert circuits_equivalent(circuit, optimized)

    def test_blocked_circuit_is_untouched(self):
        a, = qubits(1)
        circuit = Circuit()
        circuit.append(H.on(a))
        circuit.append(T.on(a))
        optimized, stats = CommutationPacking().run(circuit)
        assert stats.applications == 0
        assert optimized is circuit

    def test_z_slides_before_control(self):
        a, b = qubits(2)
        circuit = Circuit()
        circuit.append(CNOT.on(a, b))
        circuit.append(Z.on(a))  # commutes with the control
        optimized, stats = CommutationPacking().run(circuit)
        assert stats.applications == 1
        ops = list(optimized.all_operations())
        assert ops[0].gate.name == "Z"
        assert circuits_equivalent(circuit, optimized)


class TestResolvePasses:
    def test_default_order(self):
        assert [p.name for p in resolve_passes(None)] == [
            "cancel-inverses", "fuse-phases", "pack-commuting",
        ]

    def test_names_resolve(self):
        passes = resolve_passes(["fuse-phases"])
        assert len(passes) == 1
        assert passes[0].name == "fuse-phases"

    def test_instances_pass_through(self):
        instance = CancelAdjacentInverses(window=7)
        assert resolve_passes([instance])[0] is instance

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            resolve_passes(["no-such-pass"])
