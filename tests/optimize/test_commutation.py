"""Tests for the 3-tier commutation check and the insertion walk."""

import numpy as np

from repro.gates import CNOT, H, S, T, X, Z
from repro.gates.qutrit import X01, clock_gate, phase_gate
from repro.optimize import (
    clear_commutation_cache,
    commutes_into,
    operations_commute,
)
from repro.optimize.commutation import MAX_JOINT_DIM, _COMMUTE_CACHE
from repro.qudits import qubits, qutrits


class TestOperationsCommute:
    def setup_method(self):
        clear_commutation_cache()

    def test_disjoint_wires_always_commute(self):
        a, b = qubits(2)
        assert operations_commute(H.on(a), T.on(b))

    def test_diagonal_gates_commute_on_shared_wires(self):
        a, = qutrits(1)
        assert operations_commute(
            phase_gate(3, 1, 0.3).on(a), clock_gate(3).on(a)
        )

    def test_anticommuting_paulis_do_not_commute(self):
        a, = qubits(2)[:1]
        assert not operations_commute(X.on(a), Z.on(a))

    def test_dense_check_catches_control_structure(self):
        a, b, c = qubits(3)
        # CNOTs sharing only their control commute; sharing the target
        # of one with the control of the other they do not.
        assert operations_commute(CNOT.on(a, b), CNOT.on(a, c))
        assert not operations_commute(CNOT.on(a, b), CNOT.on(b, c))

    def test_z_commutes_with_cnot_control(self):
        a, b = qubits(2)
        assert operations_commute(Z.on(a), CNOT.on(a, b))
        assert not operations_commute(Z.on(b), CNOT.on(a, b))

    def test_dense_results_are_cached_canonically(self):
        clear_commutation_cache()
        a, b = qubits(2)
        c, d = qubits(2)
        assert operations_commute(CNOT.on(a, b), CNOT.on(a, b))
        cached = len(_COMMUTE_CACHE)
        assert cached >= 1
        # Same gates on different wires with the same overlap pattern
        # hit the cache instead of re-simulating.
        assert operations_commute(CNOT.on(c, d), CNOT.on(c, d))
        assert len(_COMMUTE_CACHE) == cached

    def test_joint_dim_above_cap_is_conservative(self):
        wires = qubits(10)
        from repro.gates import MatrixGate

        dim = 2 ** 9
        assert dim * 2 > MAX_JOINT_DIM
        wide = np.kron(H.unitary(), np.eye(dim // 2))
        big = MatrixGate(wide, tuple([2] * 9), name="wide")
        other = H.on(wires[9])
        joint = big.on(*wires[:9])
        # Overlapping (adds wire 9 to the joint space via wire 8) and
        # non-diagonal, so only the capped dense tier could decide it.
        overlapping = MatrixGate(
            np.kron(H.unitary(), np.eye(2)), (2, 2), name="pair"
        ).on(wires[8], wires[9])
        assert not operations_commute(joint, overlapping)
        assert operations_commute(joint, other)  # disjoint stays exact


class TestCommutesInto:
    def test_walks_past_commuting_predecessors(self):
        a, b, c = qubits(3)
        ops = [H.on(a), T.on(b), S.on(b)]
        # X on c commutes with everything: lands at position 0.
        assert commutes_into(ops, len(ops), X.on(c)) == 0

    def test_blocked_by_non_commuting_gate(self):
        a, = qubits(1)
        ops = [H.on(a), Z.on(a)]
        # X anticommutes with both H (dense) and Z: stays at the end.
        assert commutes_into(ops, len(ops), X.on(a)) == len(ops)

    def test_partial_walk(self):
        a, b = qubits(2)
        ops = [H.on(a), Z.on(b), S.on(b)]
        # T on b commutes with diagonal Z/S but the walk stops at H?
        # No: H is on a different wire, so T walks all the way home.
        assert commutes_into(ops, len(ops), T.on(b)) == 0

    def test_stops_at_blocker_mid_list(self):
        a, b = qubits(2)
        ops = [H.on(b), H.on(a), S.on(b)]
        # T on b slides past diagonal S, then hits H on b at index 0.
        assert commutes_into(ops, len(ops), T.on(b)) == 1
