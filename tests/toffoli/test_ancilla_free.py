"""Tests for the zero-ancilla qubit cascade (the QUBIT baseline)."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import DecompositionError
from repro.gates.controlled import ControlledGate
from repro.gates.matrix import MatrixGate
from repro.linalg import allclose_up_to_global_phase, random_unitary
from repro.qudits import qubits
from repro.toffoli.ancilla_free import (
    build_ancilla_free_cascade,
    multi_controlled_u_cascade,
)
from repro.toffoli.spec import GeneralizedToffoli

from .helpers import verify_exhaustive, verify_random_superposition


class TestCascadeCore:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_multi_controlled_x_unitary(self, k):
        wires = qubits(k + 1)
        controls, target = wires[:k], wires[k]
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        ops = multi_controlled_u_cascade(controls, target, x, "X")
        u = Circuit(ops).unitary(wires)
        ref_gate = ControlledGate(
            MatrixGate(x, (2,), "X"), (2,) * k
        )
        assert allclose_up_to_global_phase(u, ref_gate.unitary())

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_multi_controlled_random_u(self, k):
        rng = np.random.default_rng(21)
        u = random_unitary(2, rng)
        wires = qubits(k + 1)
        ops = multi_controlled_u_cascade(wires[:k], wires[k], u, "R")
        got = Circuit(ops).unitary(wires)
        ref = ControlledGate(MatrixGate(u, (2,), "R"), (2,) * k).unitary()
        assert allclose_up_to_global_phase(got, ref)

    def test_uses_only_circuit_wires(self):
        wires = qubits(6)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        ops = multi_controlled_u_cascade(wires[:5], wires[5], x, "X")
        used = set()
        for op in ops:
            used.update(op.qudits)
        assert used.issubset(set(wires))

    def test_contains_small_angle_gates(self):
        # The hallmark of the paper's Gidney baseline: X^(1/2^j) roots.
        wires = qubits(7)
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        ops = multi_controlled_u_cascade(wires[:6], wires[6], x, "X")
        names = {op.gate.name for op in ops}
        assert any("sqrt(sqrt(" in name for name in names)


class TestConstruction:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_exhaustive(self, n):
        result = build_ancilla_free_cascade(GeneralizedToffoli(n))
        verify_exhaustive(result)

    @pytest.mark.parametrize("n", [3, 5])
    def test_superposition_phases(self, n):
        result = build_ancilla_free_cascade(GeneralizedToffoli(n))
        verify_random_superposition(result)

    def test_no_ancilla_at_all(self):
        result = build_ancilla_free_cascade(GeneralizedToffoli(9))
        assert result.ancilla_count == 0
        assert len(result.all_wires) == 10

    def test_zero_valued_controls(self):
        result = build_ancilla_free_cascade(
            GeneralizedToffoli(3, (0, 1, 1))
        )
        verify_exhaustive(result)

    def test_rejects_qutrit_activation(self):
        with pytest.raises(DecompositionError):
            build_ancilla_free_cascade(GeneralizedToffoli(3, (1, 2, 1)))

    def test_fully_two_qubit(self):
        result = build_ancilla_free_cascade(GeneralizedToffoli(7))
        assert result.circuit.max_gate_width() <= 2

    def test_costs_more_than_one_dirty_version(self):
        from repro.toffoli.dirty_ancilla import build_one_dirty_ancilla

        free = build_ancilla_free_cascade(GeneralizedToffoli(10))
        dirty = build_one_dirty_ancilla(GeneralizedToffoli(10))
        assert (
            free.circuit.two_qudit_gate_count
            > dirty.circuit.two_qudit_gate_count
        )
