"""Tests for the d > 3 generalization of the tree (paper's future work).

The paper suggests larger-d information carriers may pay off under
connectivity pressure; the tree itself only ever touches levels {0,1,2},
so it runs unchanged on any d >= 3 — at a decomposition cost of 2d + 1
two-qudit gates per tree gate (7 at d = 3).
"""

from itertools import product

import numpy as np
import pytest

from repro.exceptions import DecompositionError
from repro.gates.controlled import ControlledGate
from repro.gates.matrix import MatrixGate
from repro.gates.decompositions import decompose_controlled_controlled_u
from repro.gates.qutrit import level_swap, shift_gate
from repro.linalg import allclose_up_to_global_phase, random_unitary
from repro.circuits.circuit import Circuit
from repro.qudits import Qudit
from repro.sim.statevector import StateVectorSimulator
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.spec import GeneralizedToffoli


class TestGeneralizedCascade:
    @pytest.mark.parametrize("dim", [3, 4, 5])
    def test_cc_u_correct_for_any_host_dimension(self, dim):
        q0, q1, t = Qudit(0, dim), Qudit(1, dim), Qudit(2, dim)
        target_gate = level_swap(dim, 0, 1)
        for values in [(1, 1), (2, 2), (dim - 1, 1), (0, 2)]:
            ops = decompose_controlled_controlled_u(
                q0, q1, t, target_gate, values
            )
            u = Circuit(ops).unitary([q0, q1, t])
            ref = ControlledGate(target_gate, (dim, dim), values).unitary()
            assert allclose_up_to_global_phase(u, ref), (dim, values)

    @pytest.mark.parametrize("dim", [3, 4, 5])
    def test_gate_count_is_2d_plus_1(self, dim):
        q0, q1, t = Qudit(0, dim), Qudit(1, dim), Qudit(2, dim)
        ops = decompose_controlled_controlled_u(
            q0, q1, t, shift_gate(dim, 1), (1, 1)
        )
        assert len(ops) == 2 * dim + 1

    def test_random_target_on_d4_host(self):
        rng = np.random.default_rng(17)
        q0, q1 = Qudit(0, 4), Qudit(1, 4)
        t = Qudit(2, 3)
        target_gate = MatrixGate(random_unitary(3, rng), (3,), "R")
        ops = decompose_controlled_controlled_u(
            q0, q1, t, target_gate, (3, 2)
        )
        u = Circuit(ops).unitary([q0, q1, t])
        ref = ControlledGate(target_gate, (4, 4), (3, 2)).unitary()
        assert allclose_up_to_global_phase(u, ref)


class TestQuditTree:
    @pytest.mark.parametrize("dim", [4, 5])
    def test_tree_exhaustive_at_higher_d(self, dim):
        n = 3
        result = build_qutrit_tree(GeneralizedToffoli(n), dimension=dim)
        sim = StateVectorSimulator()
        wires = result.controls + [result.target]
        for values in product([0, 1], repeat=n + 1):
            state = sim.run_basis(result.circuit, wires, values)
            expected = list(values)
            if all(v == 1 for v in values[:n]):
                expected[n] ^= 1
            assert np.isclose(
                state.probability_of(expected), 1.0, atol=1e-7
            )

    def test_tree_classical_at_higher_d(self, classical_sim):
        result = build_qutrit_tree(
            GeneralizedToffoli(6), decompose=False, dimension=4
        )
        wires = result.controls + [result.target]
        for values in product([0, 1], repeat=7):
            out = classical_sim.run_values(result.circuit, wires, values)
            expected = list(values)
            if all(v == 1 for v in values[:6]):
                expected[6] ^= 1
            assert out == tuple(expected)

    def test_cost_grows_with_dimension(self):
        # 2d + 1 per tree gate: d = 5 costs more than d = 3, which is the
        # paper's "d = 3 is optimal absent connectivity pressure" point.
        n = 8
        d3 = build_qutrit_tree(GeneralizedToffoli(n), dimension=3)
        d5 = build_qutrit_tree(GeneralizedToffoli(n), dimension=5)
        assert (
            d5.circuit.two_qudit_gate_count
            > d3.circuit.two_qudit_gate_count
        )

    def test_dimension_below_three_rejected(self):
        with pytest.raises(DecompositionError):
            build_qutrit_tree(GeneralizedToffoli(3), dimension=2)

    def test_name_reflects_dimension(self):
        result = build_qutrit_tree(GeneralizedToffoli(3), dimension=4)
        assert result.name == "qudit_tree_d4"
