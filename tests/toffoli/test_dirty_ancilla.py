"""Tests for dirty-ancilla ladders and the QUBIT+ANCILLA construction."""

from itertools import product

import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import DecompositionError
from repro.qudits import qubits
from repro.sim.classical import ClassicalSimulator
from repro.toffoli.dirty_ancilla import (
    build_one_dirty_ancilla,
    mcx_auto,
    mcx_dirty_ladder,
    mcx_one_dirty,
)
from repro.toffoli.spec import GeneralizedToffoli

from .helpers import verify_exhaustive, verify_random_superposition


def _check_mcx(ops, controls, target, extras, sim=None):
    """Exhaustively verify t ^= AND(controls) with extras restored."""
    sim = sim or ClassicalSimulator()
    circuit = Circuit(ops)
    wires = controls + [target] + extras
    for values in product([0, 1], repeat=len(wires)):
        # Undecomposed Toffoli chains are classical.
        out = sim.run_values(circuit, wires, values)
        expected = list(values)
        if all(v == 1 for v in values[: len(controls)]):
            expected[len(controls)] ^= 1
        assert out == tuple(expected), f"{values} -> {out}"


class TestDirtyLadder:
    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_ladder_correct_for_all_dirty_states(self, k):
        wires = qubits(k + 1 + (k - 2))
        controls, target = wires[:k], wires[k]
        dirty = wires[k + 1 :]
        ops = mcx_dirty_ladder(controls, target, dirty, decompose=False)
        _check_mcx(ops, controls, target, dirty)

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_ladder_toffoli_count(self, k):
        wires = qubits(2 * k - 1)
        ops = mcx_dirty_ladder(
            wires[:k], wires[k], wires[k + 1 :], decompose=False
        )
        assert len(ops) == 4 * (k - 2)

    def test_small_cases_direct(self):
        a, b, t = qubits(3)
        assert len(mcx_dirty_ladder([a], t, [], decompose=False)) == 1
        assert len(mcx_dirty_ladder([a, b], t, [], decompose=False)) == 1
        assert len(mcx_dirty_ladder([], t, [], decompose=False)) == 1

    def test_insufficient_dirty_rejected(self):
        wires = qubits(6)
        with pytest.raises(DecompositionError):
            mcx_dirty_ladder(wires[:4], wires[4], [wires[5]])


class TestOneDirty:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7])
    def test_single_borrowed_bit(self, k):
        wires = qubits(k + 2)
        controls, target, borrowed = wires[:k], wires[k], wires[k + 1]
        ops = mcx_one_dirty(controls, target, borrowed, decompose=False)
        _check_mcx(ops, controls, target, [borrowed])

    def test_linear_toffoli_count(self):
        # ~8k Toffolis: the jump from k to 2k should be ~2x, not 4x.
        def toffolis(k):
            wires = qubits(k + 2)
            return len(
                mcx_one_dirty(
                    wires[:k], wires[k], wires[k + 1], decompose=False
                )
            )

        assert toffolis(32) / toffolis(16) < 2.4
        assert toffolis(64) / toffolis(32) < 2.2

    def test_mcx_auto_prefers_ladder(self):
        wires = qubits(10)
        ops_ladder = mcx_auto(
            wires[:4], wires[4], wires[5:], decompose=False
        )
        ops_split = mcx_one_dirty(
            wires[:4], wires[4], wires[5], decompose=False
        )
        assert len(ops_ladder) < len(ops_split)

    def test_mcx_auto_no_dirty_raises(self):
        wires = qubits(5)
        with pytest.raises(DecompositionError):
            mcx_auto(wires[:4], wires[4], [])


class TestConstruction:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_exhaustive(self, n):
        result = build_one_dirty_ancilla(GeneralizedToffoli(n))
        verify_exhaustive(result)

    def test_superposition_phases(self):
        result = build_one_dirty_ancilla(GeneralizedToffoli(4))
        verify_random_superposition(result)

    def test_zero_valued_controls(self):
        result = build_one_dirty_ancilla(GeneralizedToffoli(3, (0, 1, 0)))
        verify_exhaustive(result)

    def test_rejects_qutrit_activation(self):
        with pytest.raises(DecompositionError):
            build_one_dirty_ancilla(GeneralizedToffoli(3, (2, 1, 1)))

    def test_fully_decomposed_to_two_qubit(self):
        result = build_one_dirty_ancilla(GeneralizedToffoli(8))
        assert result.circuit.max_gate_width() <= 2

    def test_linear_two_qudit_count(self):
        def count(n):
            return build_one_dirty_ancilla(
                GeneralizedToffoli(n)
            ).circuit.two_qudit_gate_count

        # Within ~2.5x when N doubles (linear with offsets).
        assert count(32) / count(16) < 2.5
        # Constant sits in the paper's ~48N ballpark at larger N.
        assert 30 <= count(64) / 64 <= 60
