"""Tests for the Lanyon/Ralph-style high-dimensional-target construction."""

from itertools import product

import pytest

from repro.exceptions import DecompositionError
from repro.toffoli.lanyon_target import build_lanyon_target
from repro.toffoli.spec import GeneralizedToffoli


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exhaustive_binary_inputs(self, n, classical_sim):
        result = build_lanyon_target(GeneralizedToffoli(n))
        wires = result.controls + [result.target]
        for values in product([0, 1], repeat=n + 1):
            out = classical_sim.run_values(result.circuit, wires, values)
            expected = list(values)
            if all(v == 1 for v in values[:n]):
                expected[n] ^= 1
            assert out == tuple(expected)

    def test_zero_valued_controls(self, classical_sim):
        result = build_lanyon_target(GeneralizedToffoli(3, (0, 1, 0)))
        wires = result.controls + [result.target]
        for values in product([0, 1], repeat=4):
            out = classical_sim.run_values(result.circuit, wires, values)
            expected = list(values)
            if values[:3] == (0, 1, 0):
                expected[3] ^= 1
            assert out == tuple(expected)

    def test_rejects_qutrit_activation(self):
        with pytest.raises(DecompositionError):
            build_lanyon_target(GeneralizedToffoli(2, (2, 1)))


class TestResources:
    def test_target_dimension_is_2n_plus_2(self):
        for n in (2, 5, 9):
            result = build_lanyon_target(GeneralizedToffoli(n))
            assert result.target.dimension == 2 * n + 2

    def test_linear_gate_count(self):
        result = build_lanyon_target(GeneralizedToffoli(10))
        assert result.circuit.two_qudit_gate_count == 2 * 10

    def test_no_ancilla(self):
        result = build_lanyon_target(GeneralizedToffoli(7))
        assert result.ancilla_count == 0

    def test_controls_are_qubits(self):
        result = build_lanyon_target(GeneralizedToffoli(4))
        assert all(w.dimension == 2 for w in result.controls)
