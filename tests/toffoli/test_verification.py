"""Tests for the public verification API."""

import pytest

from repro.circuits.circuit import Circuit
from repro.gates.base import PermutationGate
from repro.gates.qutrit import X01
from repro.toffoli.registry import build_toffoli
from repro.toffoli.spec import ConstructionResult, GeneralizedToffoli
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.verification import (
    VerificationError,
    verify_classical,
    verify_classical_looped,
    verify_construction,
    verify_statevector,
)

#: name -> builder kwargs yielding a permutation-level circuit, for the
#: batched-vs-looped parity sweep over the whole registry.
PERMUTATION_LEVEL = {
    "qutrit_tree": {"decompose": False},
    "qubit_one_dirty": {"decompose": False},
    "he_tree": {"decompose": False},
    "wang_chain": {},
    "lanyon_target": {},
}


class TestVerifyClassical:
    def test_tree_passes_and_counts_inputs(self):
        result = build_qutrit_tree(GeneralizedToffoli(4), decompose=False)
        assert verify_classical(result) == 2**5

    def test_borrowed_patterns_counted(self):
        result = build_toffoli("qubit_one_dirty", 3, decompose=False)
        assert verify_classical(result) == 2**4 * 2  # data x dirty states

    def test_broken_circuit_detected(self):
        good = build_qutrit_tree(GeneralizedToffoli(2), decompose=False)
        broken = ConstructionResult(
            circuit=good.circuit + Circuit([X01.on(good.target)]),
            controls=good.controls,
            target=good.target,
            spec=good.spec,
            name="broken",
        )
        with pytest.raises(VerificationError):
            verify_classical(broken)


class TestVerifyStatevector:
    def test_decomposed_tree_passes(self):
        result = build_toffoli("qutrit_tree", 3)
        assert verify_statevector(result) == 2**4

    def test_cascade_passes(self):
        result = build_toffoli("qubit_ancilla_free", 3)
        assert verify_statevector(result) == 2**4

    def test_broken_circuit_detected(self):
        good = build_toffoli("qutrit_tree", 2)
        broken = ConstructionResult(
            circuit=good.circuit + Circuit([X01.on(good.controls[0])]),
            controls=good.controls,
            target=good.target,
            spec=good.spec,
            name="broken",
        )
        with pytest.raises(VerificationError):
            verify_statevector(broken)


class TestBatchedLoopedParity:
    """The batched engine must make the same accept/reject decisions as
    the pre-batching per-input loop on the full construction registry."""

    @pytest.mark.parametrize("name", sorted(PERMUTATION_LEVEL))
    def test_accepts_match(self, name):
        result = build_toffoli(name, 3, **PERMUTATION_LEVEL[name])
        assert verify_classical(result) == verify_classical_looped(result)

    @pytest.mark.parametrize("name", sorted(PERMUTATION_LEVEL))
    def test_rejects_match(self, name):
        good = build_toffoli(name, 3, **PERMUTATION_LEVEL[name])
        # A 0<->1 swap on the target, whatever its dimension (the Lanyon
        # construction uses a d=2N+2 target).
        d = good.target.dimension
        mapping = [1, 0] + list(range(2, d))
        gate = PermutationGate(mapping, (d,), "flip01")
        broken = ConstructionResult(
            circuit=good.circuit + Circuit([gate.on(good.target)]),
            controls=good.controls,
            target=good.target,
            spec=good.spec,
            name=f"broken-{name}",
            clean_ancilla=good.clean_ancilla,
            borrowed_ancilla=good.borrowed_ancilla,
        )
        with pytest.raises(VerificationError):
            verify_classical(broken)
        with pytest.raises(VerificationError):
            verify_classical_looped(broken)

    def test_failure_reports_the_same_first_input(self):
        good = build_qutrit_tree(GeneralizedToffoli(3), decompose=False)
        broken = ConstructionResult(
            circuit=good.circuit + Circuit([X01.on(good.target)]),
            controls=good.controls,
            target=good.target,
            spec=good.spec,
            name="broken",
        )
        with pytest.raises(VerificationError) as batched_error:
            verify_classical(broken)
        with pytest.raises(VerificationError) as looped_error:
            verify_classical_looped(broken)
        assert str(batched_error.value) == str(looped_error.value)

    def test_dirty_pattern_flag_matches(self):
        result = build_toffoli("qubit_one_dirty", 3, decompose=False)
        for dirty in (True, False):
            assert verify_classical(
                result, dirty_patterns=dirty
            ) == verify_classical_looped(result, dirty_patterns=dirty)


class TestVerifyConstruction:
    @pytest.mark.parametrize(
        "name,n",
        [
            ("qutrit_tree", 4),
            ("qubit_one_dirty", 4),
            ("he_tree", 4),
            ("wang_chain", 4),
            ("lanyon_target", 4),
            ("qubit_ancilla_free", 4),
        ],
    )
    def test_every_registered_construction_verifies(self, name, n):
        result = build_toffoli(name, n)
        assert verify_construction(result) > 0

    def test_dispatches_to_classical_for_permutations(self):
        # The undecomposed tree is classical; verification must succeed
        # through the cheap path (indirectly checked via input count).
        result = build_qutrit_tree(GeneralizedToffoli(6), decompose=False)
        assert verify_construction(result) == 2**7
