"""Tests for the public verification API."""

import pytest

from repro.circuits.circuit import Circuit
from repro.gates.qutrit import X01
from repro.toffoli.registry import build_toffoli
from repro.toffoli.spec import ConstructionResult, GeneralizedToffoli
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.verification import (
    VerificationError,
    verify_classical,
    verify_construction,
    verify_statevector,
)


class TestVerifyClassical:
    def test_tree_passes_and_counts_inputs(self):
        result = build_qutrit_tree(GeneralizedToffoli(4), decompose=False)
        assert verify_classical(result) == 2**5

    def test_borrowed_patterns_counted(self):
        result = build_toffoli("qubit_one_dirty", 3, decompose=False)
        assert verify_classical(result) == 2**4 * 2  # data x dirty states

    def test_broken_circuit_detected(self):
        good = build_qutrit_tree(GeneralizedToffoli(2), decompose=False)
        broken = ConstructionResult(
            circuit=good.circuit + Circuit([X01.on(good.target)]),
            controls=good.controls,
            target=good.target,
            spec=good.spec,
            name="broken",
        )
        with pytest.raises(VerificationError):
            verify_classical(broken)


class TestVerifyStatevector:
    def test_decomposed_tree_passes(self):
        result = build_toffoli("qutrit_tree", 3)
        assert verify_statevector(result) == 2**4

    def test_cascade_passes(self):
        result = build_toffoli("qubit_ancilla_free", 3)
        assert verify_statevector(result) == 2**4

    def test_broken_circuit_detected(self):
        good = build_toffoli("qutrit_tree", 2)
        broken = ConstructionResult(
            circuit=good.circuit + Circuit([X01.on(good.controls[0])]),
            controls=good.controls,
            target=good.target,
            spec=good.spec,
            name="broken",
        )
        with pytest.raises(VerificationError):
            verify_statevector(broken)


class TestVerifyConstruction:
    @pytest.mark.parametrize(
        "name,n",
        [
            ("qutrit_tree", 4),
            ("qubit_one_dirty", 4),
            ("he_tree", 4),
            ("wang_chain", 4),
            ("lanyon_target", 4),
            ("qubit_ancilla_free", 4),
        ],
    )
    def test_every_registered_construction_verifies(self, name, n):
        result = build_toffoli(name, n)
        assert verify_construction(result) > 0

    def test_dispatches_to_classical_for_permutations(self):
        # The undecomposed tree is classical; verification must succeed
        # through the cheap path (indirectly checked via input count).
        result = build_qutrit_tree(GeneralizedToffoli(6), decompose=False)
        assert verify_construction(result) == 2**7
