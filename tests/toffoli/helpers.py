"""Shared verification helpers for Generalized Toffoli constructions."""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.sim.state import StateVector
from repro.sim.statevector import StateVectorSimulator
from repro.toffoli.spec import ConstructionResult


def verify_exhaustive(
    result: ConstructionResult,
    dirty_patterns: bool = True,
) -> None:
    """Assert a construction is correct on every binary input.

    Controls and target sweep {0,1}; clean ancilla start at 0 and must end
    at 0; borrowed ancilla sweep {0,1} and must be restored.  Uses dense
    state-vector runs so non-classical intermediate gates are fine.
    """
    sim = StateVectorSimulator()
    spec = result.spec
    n = spec.num_controls
    wires = result.all_wires
    num_clean = len(result.clean_ancilla)
    num_borrowed = len(result.borrowed_ancilla)
    borrow_space = (
        list(product([0, 1], repeat=num_borrowed))
        if dirty_patterns
        else [(0,) * num_borrowed]
    )
    for data in product([0, 1], repeat=n + 1):
        for borrowed in borrow_space:
            values = list(data) + [0] * num_clean + list(borrowed)
            state = sim.run_basis(result.circuit, wires, values)
            expected = list(values)
            if spec.is_active(data[:n]):
                expected[n] ^= 1
            probability = state.probability_of(expected)
            assert np.isclose(probability, 1.0, atol=1e-7), (
                f"{result.name}: input {values} gave "
                f"P[expected]={probability:.6f}"
            )


def verify_random_superposition(
    result: ConstructionResult, seed: int = 1234
) -> None:
    """Assert phases are right: a random binary-subspace state must map to
    the reference-permuted state with fidelity 1 (global phase excepted)."""
    rng = np.random.default_rng(seed)
    spec = result.spec
    n = spec.num_controls
    wires = result.all_wires
    data_wires = wires[: n + 1]
    caps = {w: 2 for w in data_wires}
    # Ancilla start in |0>; borrowed dirty wires get |1> to be adversarial.
    state = StateVector.random(data_wires, rng, levels_per_wire=caps)
    tensor = state.tensor
    full = StateVector.zero(wires)
    index = [0] * len(wires)
    for w in result.borrowed_ancilla:
        index[wires.index(w)] = 1
    # Embed the random data state into the full register.  The data
    # tensor already spans each data wire's full dimension (its non-binary
    # levels hold zero amplitude), so slice whole data axes.
    full_tensor = np.zeros(full.tensor.shape, dtype=complex)
    slicer = [slice(None)] * (n + 1) + [
        slice(v, v + 1) for v in index[n + 1 :]
    ]
    full_tensor[tuple(slicer)] = tensor.reshape(
        tensor.shape + (1,) * (len(wires) - n - 1)
    )
    actual = StateVector(wires, full_tensor.copy())
    for op in result.circuit.all_operations():
        actual.apply_operation(op)

    # Reference: permute the data tensor's basis directly.
    expected_tensor = np.zeros_like(full_tensor)
    for data in product([0, 1], repeat=n + 1):
        amplitude = full_tensor[data + tuple(index[n + 1 :])]
        out = list(data)
        if spec.is_active(data[:n]):
            out[n] ^= 1
        expected_tensor[tuple(out) + tuple(index[n + 1 :])] = amplitude
    expected = StateVector(wires, expected_tensor)
    fidelity = actual.fidelity(expected)
    assert np.isclose(fidelity, 1.0, atol=1e-7), (
        f"{result.name}: superposition fidelity {fidelity:.6f}"
    )
