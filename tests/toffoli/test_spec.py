"""Tests for the Generalized Toffoli spec."""

import pytest

from repro.exceptions import DecompositionError
from repro.toffoli.spec import (
    ConstructionResult,
    GeneralizedToffoli,
    require_min_controls,
)
from repro.toffoli.registry import build_toffoli


class TestSpec:
    def test_default_values_are_ones(self):
        spec = GeneralizedToffoli(4)
        assert spec.control_values == (1, 1, 1, 1)

    def test_explicit_values(self):
        spec = GeneralizedToffoli(3, (0, 1, 2))
        assert spec.control_values == (0, 1, 2)

    def test_value_count_checked(self):
        with pytest.raises(ValueError):
            GeneralizedToffoli(3, (1, 1))

    def test_negative_controls_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedToffoli(-1)

    def test_num_inputs(self):
        assert GeneralizedToffoli(13).num_inputs == 14

    def test_is_active(self):
        spec = GeneralizedToffoli(3, (1, 0, 1))
        assert spec.is_active((1, 0, 1))
        assert not spec.is_active((1, 1, 1))

    def test_is_active_arity_checked(self):
        with pytest.raises(ValueError):
            GeneralizedToffoli(3).is_active((1, 1))

    def test_reference_output_flips_when_active(self):
        spec = GeneralizedToffoli(2)
        controls, target = spec.reference_output((1, 1), 0)
        assert controls == (1, 1) and target == 1

    def test_reference_output_identity_when_inactive(self):
        spec = GeneralizedToffoli(2)
        _, target = spec.reference_output((1, 0), 0)
        assert target == 0

    def test_reference_output_custom_action(self):
        spec = GeneralizedToffoli(1)
        _, target = spec.reference_output((1,), 1, target_action=lambda b: b)
        assert target == 1


class TestResult:
    def test_describe_mentions_resources(self):
        result = build_toffoli("qutrit_tree", 4)
        text = result.describe()
        assert "depth" in text and "2q-gates" in text

    def test_all_wires_order(self):
        result = build_toffoli("he_tree", 4)
        wires = result.all_wires
        assert wires[: len(result.controls)] == result.controls
        assert wires[len(result.controls)] == result.target

    def test_ancilla_count(self):
        result = build_toffoli("qubit_one_dirty", 5)
        assert result.ancilla_count == 1

    def test_require_min_controls(self):
        with pytest.raises(DecompositionError):
            require_min_controls(GeneralizedToffoli(1), 2, "x")
