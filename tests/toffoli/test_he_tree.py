"""Tests for He's log-depth clean-ancilla construction."""

import pytest

from repro.toffoli.he_tree import build_he_tree
from repro.toffoli.spec import GeneralizedToffoli

from .helpers import verify_exhaustive, verify_random_superposition


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_exhaustive(self, n):
        result = build_he_tree(GeneralizedToffoli(n))
        verify_exhaustive(result)

    def test_superposition_phases(self):
        result = build_he_tree(GeneralizedToffoli(4))
        verify_random_superposition(result)

    def test_zero_valued_controls(self):
        result = build_he_tree(GeneralizedToffoli(3, (0, 0, 1)))
        verify_exhaustive(result)

    def test_ancilla_restored_to_zero(self, state_sim):
        result = build_he_tree(GeneralizedToffoli(4))
        wires = result.all_wires
        values = [1] * 4 + [0] + [0] * len(result.clean_ancilla)
        state = state_sim.run_basis(result.circuit, wires, values)
        expected = [1, 1, 1, 1, 1] + [0] * len(result.clean_ancilla)
        assert state.probability_of(expected) == pytest.approx(1.0)


class TestResources:
    def test_ancilla_count_is_n_minus_one(self):
        for n in (4, 8, 16):
            result = build_he_tree(GeneralizedToffoli(n))
            assert len(result.clean_ancilla) == n - 1

    def test_log_depth_at_toffoli_granularity(self):
        shallow = build_he_tree(
            GeneralizedToffoli(8), decompose=False
        ).circuit.depth
        deep = build_he_tree(
            GeneralizedToffoli(64), decompose=False
        ).circuit.depth
        # 8x the controls should add ~6 moments (3 levels each way).
        assert deep - shallow == 6

    def test_tree_parallelism(self):
        # First layer Toffolis all run in moment 0.
        result = build_he_tree(GeneralizedToffoli(8), decompose=False)
        assert len(result.circuit.moments[0]) == 4
