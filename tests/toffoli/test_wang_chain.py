"""Tests for the Wang/Perkowski linear qutrit chain."""

import pytest

from repro.exceptions import DecompositionError
from repro.toffoli.spec import GeneralizedToffoli
from repro.toffoli.wang_chain import build_wang_chain

from .helpers import verify_exhaustive, verify_random_superposition


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_exhaustive(self, n):
        result = build_wang_chain(GeneralizedToffoli(n))
        verify_exhaustive(result)

    def test_superposition_phases(self):
        result = build_wang_chain(GeneralizedToffoli(4))
        verify_random_superposition(result)

    def test_mixed_binary_control_values(self):
        result = build_wang_chain(GeneralizedToffoli(4, (0, 1, 0, 1)))
        verify_exhaustive(result)

    def test_first_control_cannot_activate_on_two(self):
        with pytest.raises(DecompositionError):
            build_wang_chain(GeneralizedToffoli(3, (2, 1, 1)))


class TestResources:
    def test_linear_depth(self):
        d16 = build_wang_chain(GeneralizedToffoli(16)).circuit.depth
        d32 = build_wang_chain(GeneralizedToffoli(32)).circuit.depth
        assert 1.8 < d32 / d16 < 2.2

    def test_no_ancilla(self):
        result = build_wang_chain(GeneralizedToffoli(12))
        assert result.ancilla_count == 0

    def test_two_qudit_gate_count_is_2n_minus_1(self):
        for n in (4, 9, 17):
            result = build_wang_chain(GeneralizedToffoli(n))
            assert result.circuit.two_qudit_gate_count == 2 * n - 1

    def test_all_two_qudit(self):
        result = build_wang_chain(GeneralizedToffoli(10))
        assert result.circuit.max_gate_width() <= 2
