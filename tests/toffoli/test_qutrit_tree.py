"""Tests for the paper's qutrit tree construction (Sec. 4.2)."""

from itertools import product

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import DecompositionError
from repro.gates.qutrit import X01
from repro.gates.qutrit import phase_gate
from repro.qudits import Qudit, qutrits
from repro.toffoli.qutrit_tree import (
    build_qutrit_tree,
    elevation_slots,
    qutrit_multi_controlled_ops,
)
from repro.toffoli.spec import GeneralizedToffoli

from .helpers import verify_exhaustive, verify_random_superposition


class TestElevationSlots:
    def test_small_cases(self):
        assert elevation_slots(1) == frozenset()
        assert elevation_slots(2) == frozenset({1})
        assert elevation_slots(3) == frozenset({1})

    def test_position_zero_never_elevated(self):
        for n in range(1, 40):
            assert 0 not in elevation_slots(n)

    def test_figure5_pattern_for_15_controls(self):
        # Figure 5: q1, q3, q5, q7, q9, q11, q13 receive X+1.
        assert elevation_slots(15) == frozenset({1, 3, 5, 7, 9, 11, 13})

    def test_control_only_positions_lower_bound(self):
        # At least a quarter of positions (plus position 0) stay
        # control-only, so gates with a |2>-activated carry always fit.
        for n in range(2, 60):
            control_only = n - len(elevation_slots(n))
            assert control_only >= max(1, (n + 1) // 4)


class TestClassicalGranularity:
    """Undecomposed circuits are permutations — the paper's fast path."""

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_exhaustive_small_widths(self, n, classical_sim):
        result = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
        wires = result.controls + [result.target]
        for values in product([0, 1], repeat=n + 1):
            out = classical_sim.run_values(result.circuit, wires, values)
            expected = list(values)
            if all(v == 1 for v in values[:n]):
                expected[n] ^= 1
            assert out == tuple(expected)

    @pytest.mark.slow
    @pytest.mark.parametrize("n", [9, 10, 11, 12, 13])
    def test_exhaustive_paper_scale(self, n, classical_sim):
        # The paper verified all classical inputs up to width 14
        # (13 controls + target); the classical simulator makes this cheap.
        result = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
        wires = result.controls + [result.target]
        for values in product([0, 1], repeat=n + 1):
            out = classical_sim.run_values(result.circuit, wires, values)
            expected = list(values)
            if all(v == 1 for v in values[:n]):
                expected[n] ^= 1
            assert out == tuple(expected)

    def test_controls_restored_even_mid_pattern(self, classical_sim):
        result = build_qutrit_tree(GeneralizedToffoli(6), decompose=False)
        wires = result.controls + [result.target]
        out = classical_sim.run_values(result.circuit, wires, (1, 1, 0, 1, 1, 1, 0))
        assert out == (1, 1, 0, 1, 1, 1, 0)


class TestDecomposed:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exhaustive_decomposed(self, n):
        result = build_qutrit_tree(GeneralizedToffoli(n))
        verify_exhaustive(result)

    @pytest.mark.parametrize("n", [2, 3, 4, 6])
    def test_superposition_phases(self, n):
        result = build_qutrit_tree(GeneralizedToffoli(n))
        verify_random_superposition(result)

    def test_all_gates_at_most_two_qudits(self):
        result = build_qutrit_tree(GeneralizedToffoli(9))
        assert result.circuit.max_gate_width() <= 2


class TestControlValues:
    @pytest.mark.parametrize(
        "values",
        [(0, 1, 1), (1, 0, 1), (0, 0, 0), (1, 1, 0), (0, 1, 0, 1, 1)],
    )
    def test_binary_activation_patterns(self, values, classical_sim):
        n = len(values)
        result = build_qutrit_tree(
            GeneralizedToffoli(n, tuple(values)), decompose=False
        )
        wires = result.controls + [result.target]
        for inputs in product([0, 1], repeat=n + 1):
            out = classical_sim.run_values(result.circuit, wires, inputs)
            expected = list(inputs)
            if tuple(inputs[:n]) == tuple(values):
                expected[n] ^= 1
            assert out == tuple(expected)

    def test_two_valued_first_control(self, classical_sim):
        # The incrementer's gates: first control activates on |2>.
        controls = qutrits(3)
        target = Qudit(3, 3)
        ops = qutrit_multi_controlled_ops(
            controls, [2, 1, 1], target, X01, decompose=False
        )
        circuit = Circuit(ops)
        wires = controls + [target]
        for first in (0, 1, 2):
            for rest in product([0, 1], repeat=3):
                values = (first,) + rest
                out = classical_sim.run_values(circuit, wires, values)
                expected = list(values)
                if first == 2 and rest[0] == 1 and rest[1] == 1:
                    expected[3] ^= 1
                assert out == tuple(expected)

    def test_too_many_two_valued_controls_rejected(self):
        controls = qutrits(3)
        target = Qudit(3, 3)
        with pytest.raises(DecompositionError):
            qutrit_multi_controlled_ops(
                controls, [2, 2, 2], target, X01
            )

    def test_non_qutrit_control_rejected(self):
        with pytest.raises(DecompositionError):
            qutrit_multi_controlled_ops(
                [Qudit(0, 2)], [1], Qudit(1, 3), X01
            )

    def test_target_gate_dimension_checked(self):
        from repro.gates.qubit import X as QUBIT_X

        with pytest.raises(DecompositionError):
            build_qutrit_tree(GeneralizedToffoli(2), target_gate=QUBIT_X)


class TestStructure:
    def test_depth_is_logarithmic(self):
        # At three-qutrit-gate granularity the tree has 2 ceil(log2) + 1
        # levels; Figure 5's 15-control instance has 7 moments.
        result = build_qutrit_tree(GeneralizedToffoli(15), decompose=False)
        assert result.circuit.depth == 7

    def test_gate_count_matches_figure5(self):
        # 7 compute + 1 apply + 7 uncompute three-qutrit gates.
        result = build_qutrit_tree(GeneralizedToffoli(15), decompose=False)
        assert result.circuit.num_operations == 15

    def test_no_ancilla_used(self):
        result = build_qutrit_tree(GeneralizedToffoli(20))
        assert result.ancilla_count == 0
        assert len(result.all_wires) == 21

    def test_depth_scales_logarithmically(self):
        shallow = build_qutrit_tree(GeneralizedToffoli(16)).circuit.depth
        deep = build_qutrit_tree(GeneralizedToffoli(64)).circuit.depth
        # Quadrupling N should add ~2 tree levels, far less than 4x depth.
        assert deep < 2 * shallow

    def test_two_qudit_count_scales_linearly(self):
        count_32 = build_qutrit_tree(
            GeneralizedToffoli(32)
        ).circuit.two_qudit_gate_count
        count_64 = build_qutrit_tree(
            GeneralizedToffoli(64)
        ).circuit.two_qudit_gate_count
        assert 1.7 < count_64 / count_32 < 2.3

    def test_phase_target_gate(self, state_sim):
        # Grover's oracle uses a phase target: check it composes.
        controls = qutrits(2)
        target = Qudit(2, 3)
        ops = qutrit_multi_controlled_ops(
            controls, [1, 1], target, phase_gate(3, 1, np.pi)
        )
        circuit = Circuit(ops)
        state = state_sim.run_basis(circuit, controls + [target], (1, 1, 1))
        amplitude = state.tensor[1, 1, 1]
        assert np.isclose(amplitude, -1.0, atol=1e-7)

    def test_zero_controls_apply_target_directly(self):
        ops = qutrit_multi_controlled_ops([], [], Qudit(0, 3), X01)
        assert len(ops) == 1
