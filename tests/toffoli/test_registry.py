"""Tests for the construction registry and cross-construction agreement."""

from itertools import product

import pytest

from repro.sim.statevector import StateVectorSimulator
from repro.toffoli.registry import CONSTRUCTIONS, build_toffoli


class TestRegistry:
    def test_expected_entries(self):
        assert set(CONSTRUCTIONS) == {
            "qutrit_tree",
            "qubit_ancilla_free",
            "qubit_one_dirty",
            "he_tree",
            "wang_chain",
            "lanyon_target",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_toffoli("nope", 3)

    def test_build_passes_control_values(self):
        result = build_toffoli("qutrit_tree", 3, control_values=(0, 1, 1))
        assert result.spec.control_values == (0, 1, 1)

    def test_metadata_present(self):
        for info in CONSTRUCTIONS.values():
            assert info.paper_label
            assert info.depth_scaling
            assert info.ancilla
            assert info.qudit_types


class TestCrossConstructionAgreement:
    """Every construction implements the same logical gate."""

    @pytest.mark.parametrize("name", sorted(CONSTRUCTIONS))
    def test_agree_on_truth_table(self, name):
        n = 4
        result = build_toffoli(name, n)
        sim = StateVectorSimulator()
        wires = result.all_wires
        pad = len(wires) - (n + 1)
        for data in product([0, 1], repeat=n + 1):
            values = list(data) + [0] * pad
            state = sim.run_basis(result.circuit, wires, values)
            expected = list(values)
            if all(v == 1 for v in data[:n]):
                expected[n] ^= 1
            assert state.probability_of(expected) == pytest.approx(
                1.0, abs=1e-7
            ), f"{name} disagreed on {data}"
