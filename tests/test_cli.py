"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_figures(self, capsys):
        assert main(["figures", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 10" in out
        assert "QUTRIT" in out

    def test_fidelity_small(self, capsys):
        assert main(
            ["fidelity", "--controls", "3", "--trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "DRESSED_QUTRIT" in out

    def test_verify(self, capsys):
        assert main(["verify", "--controls", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified" in out

    def test_verify_single_construction(self, capsys):
        assert main(["verify", "qutrit_tree", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified 16 inputs" in out
        assert "he_tree" not in out

    def test_verify_unknown_construction(self):
        with pytest.raises(SystemExit, match="unknown construction"):
            main(["verify", "nope", "-n", "3"])

    def test_verify_undecomposed_wide_circuit(self, capsys):
        # The paper's linear-cost classical check: permutation-level
        # circuits stay fast at widths where dense verification would
        # be hopeless (this is the width-11 variant of the width-14 run).
        assert main(
            ["verify", "qutrit_tree", "-n", "10", "--undecomposed"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified 2048 inputs" in out

    def test_verify_undecomposed_rejected_for_permutation_native(self):
        with pytest.raises(SystemExit, match="does not take"):
            main(["verify", "wang_chain", "-n", "3", "--undecomposed"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCircuitCli:
    def test_save_show_load_round_trip(self, tmp_path, capsys):
        path = tmp_path / "tree.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "4", "--undecomposed", "--out", str(path),
            ]
        ) == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["circuit", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "operations=" in out and "@1" in out

        assert main(
            [
                "circuit", "load", str(path), "--backend", "classical",
                "--input", "1", "1", "1", "1", "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "output values: (1, 1, 1, 1, 1)" in out

    def test_save_to_stdout(self, capsys):
        assert main(
            [
                "circuit", "save", "--construction", "wang_chain",
                "--controls", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert '"version":2' in out.replace(" ", "")

    def test_saved_circuit_is_loadable_json(self, tmp_path, capsys):
        from repro.circuits.circuit import Circuit
        from repro.toffoli.registry import build_toffoli

        path = tmp_path / "lowered.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "4", "--pipeline", "lowering",
                "--out", str(path), "--pretty",
            ]
        ) == 0
        saved = Circuit.from_json(path.read_text())
        assert saved == build_toffoli("qutrit_tree", 4).circuit

    def test_load_rejects_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot load"):
            main(["circuit", "show", str(path)])
        with pytest.raises(SystemExit, match="cannot read"):
            main(["circuit", "show", str(tmp_path / "missing.json")])
