"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_figures(self, capsys):
        assert main(["figures", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 10" in out
        assert "QUTRIT" in out

    def test_fidelity_small(self, capsys):
        assert main(
            ["fidelity", "--controls", "3", "--trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "DRESSED_QUTRIT" in out

    def test_verify(self, capsys):
        assert main(["verify", "--controls", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified" in out

    def test_verify_single_construction(self, capsys):
        assert main(["verify", "qutrit_tree", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified 16 inputs" in out
        assert "he_tree" not in out

    def test_verify_unknown_construction(self):
        with pytest.raises(SystemExit, match="unknown construction"):
            main(["verify", "nope", "-n", "3"])

    def test_verify_undecomposed_wide_circuit(self, capsys):
        # The paper's linear-cost classical check: permutation-level
        # circuits stay fast at widths where dense verification would
        # be hopeless (this is the width-11 variant of the width-14 run).
        assert main(
            ["verify", "qutrit_tree", "-n", "10", "--undecomposed"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified 2048 inputs" in out

    def test_verify_undecomposed_rejected_for_permutation_native(self):
        with pytest.raises(SystemExit, match="does not take"):
            main(["verify", "wang_chain", "-n", "3", "--undecomposed"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCircuitCli:
    def test_save_show_load_round_trip(self, tmp_path, capsys):
        path = tmp_path / "tree.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "4", "--undecomposed", "--out", str(path),
            ]
        ) == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["circuit", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "operations=" in out and "@1" in out

        assert main(
            [
                "circuit", "load", str(path), "--backend", "classical",
                "--input", "1", "1", "1", "1", "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "output values: (1, 1, 1, 1, 1)" in out

    def test_save_to_stdout(self, capsys):
        assert main(
            [
                "circuit", "save", "--construction", "wang_chain",
                "--controls", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert '"version":2' in out.replace(" ", "")

    def test_saved_circuit_is_loadable_json(self, tmp_path, capsys):
        from repro.circuits.circuit import Circuit
        from repro.toffoli.registry import build_toffoli

        path = tmp_path / "lowered.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "4", "--pipeline", "lowering",
                "--out", str(path), "--pretty",
            ]
        ) == 0
        saved = Circuit.from_json(path.read_text())
        assert saved == build_toffoli("qutrit_tree", 4).circuit

    def test_load_rejects_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot load"):
            main(["circuit", "show", str(path)])
        with pytest.raises(SystemExit, match="cannot read"):
            main(["circuit", "show", str(tmp_path / "missing.json")])


class TestRouteCommand:
    def test_route_default_table(self, capsys):
        assert main(["route", "--controls", "4"]) == 0
        out = capsys.readouterr().out
        assert "routing qutrit_tree(N=4)" in out
        assert "line(5)" in out and "all-to-all(5)" in out
        assert "lookahead" in out

    def test_route_both_routers_with_noise(self, capsys):
        assert main(
            [
                "route", "--controls", "4", "--topology", "line",
                "--router", "both", "--noise", "SC",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "lookahead" in out
        assert "fid~" in out

    def test_route_trajectory_estimate(self, capsys):
        assert main(
            [
                "route", "--controls", "3", "--topology", "line",
                "--noise", "SC", "--trials", "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fid(mc)" in out and "±" in out

    def test_route_trials_require_noise(self):
        with pytest.raises(SystemExit, match="needs --noise"):
            main(["route", "--controls", "3", "--trials", "5"])

    def test_route_unknown_noise_rejected(self):
        with pytest.raises(SystemExit, match="unknown noise model"):
            main(["route", "--controls", "3", "--noise", "NOPE"])

    def test_route_unknown_topology_rejected(self):
        with pytest.raises(SystemExit, match="unknown topology"):
            main(["route", "--controls", "3", "--topology", "torus"])

    def test_route_saved_circuit_file(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "3", "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["route", "--file", str(path), "--topology", "ring"]
        ) == 0
        out = capsys.readouterr().out
        assert "ring(4)" in out

    def test_route_router_knobs(self, capsys):
        assert main(
            [
                "route", "--controls", "4", "--topology", "grid_2d",
                "--lookahead", "4", "--placement-trials", "0",
                "--seed", "7",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "grid" in out


class TestBenchRouteCheck:
    def _fresh_smoke_report(self):
        from repro.analysis.bench import run_route_bench

        return run_route_bench(smoke=True)

    @staticmethod
    def _stub_heavy_suites(monkeypatch):
        # Only the routing suite matters here: stub the heavy noise and
        # verification suites out of the bench command.
        from repro.analysis import bench as bench_module

        monkeypatch.setattr(
            bench_module, "run_bench",
            lambda smoke, seed: {"smoke": smoke, "seed": seed},
        )
        monkeypatch.setattr(
            bench_module, "run_verify_bench", lambda smoke: {"smoke": smoke}
        )
        monkeypatch.setattr(
            bench_module, "render_report", lambda report: "noise stub"
        )
        monkeypatch.setattr(
            bench_module, "render_verify_report",
            lambda report: "verify stub",
        )

    def test_check_route_passes_against_identical_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        report = self._fresh_smoke_report()
        baseline = tmp_path / "BENCH_route.json"
        baseline.write_text(json.dumps(report))
        self._stub_heavy_suites(monkeypatch)
        assert main(
            [
                "bench", "--smoke", "--out", "-", "--verify-out", "-",
                "--route-out", str(tmp_path / "fresh.json"),
                "--check-route", str(baseline),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "regression check passed" in out

    def test_check_route_fails_on_degraded_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        report = self._fresh_smoke_report()
        shrunk = json.loads(json.dumps(report))
        for record in shrunk["records"]:
            record["routed_depth"] = max(
                1, record["routed_depth"] // 10
            )
        baseline = tmp_path / "BENCH_route.json"
        baseline.write_text(json.dumps(shrunk))
        self._stub_heavy_suites(monkeypatch)
        with pytest.raises(SystemExit):
            main(
                [
                    "bench", "--smoke", "--out", "-", "--verify-out", "-",
                    "--route-out", "-", "--check-route", str(baseline),
                ]
            )
        out = capsys.readouterr().out
        assert "regression check FAILED" in out

    def test_check_route_unreadable_baseline(self, tmp_path, monkeypatch):
        from repro.analysis import bench as bench_module

        self._stub_heavy_suites(monkeypatch)
        monkeypatch.setattr(
            bench_module, "run_route_bench",
            lambda smoke: {"smoke": smoke, "records": []},
        )
        monkeypatch.setattr(
            bench_module, "render_route_report",
            lambda report: "route stub",
        )
        with pytest.raises(SystemExit, match="cannot read"):
            main(
                [
                    "bench", "--smoke", "--out", "-", "--verify-out", "-",
                    "--route-out", "-",
                    "--check-route", str(tmp_path / "missing.json"),
                ]
            )
