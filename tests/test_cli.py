"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_figures(self, capsys):
        assert main(["figures", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 10" in out
        assert "QUTRIT" in out

    def test_fidelity_small(self, capsys):
        assert main(
            ["fidelity", "--controls", "3", "--trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "DRESSED_QUTRIT" in out

    def test_verify(self, capsys):
        assert main(["verify", "--controls", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
