"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_tables(self, capsys):
        assert main(["tables", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out and "Table 3" in out

    def test_figures(self, capsys):
        assert main(["figures", "--sizes", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "Figure 10" in out
        assert "QUTRIT" in out

    def test_fidelity_small(self, capsys):
        assert main(
            ["fidelity", "--controls", "3", "--trials", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "DRESSED_QUTRIT" in out

    def test_verify(self, capsys):
        assert main(["verify", "--controls", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified" in out

    def test_verify_single_construction(self, capsys):
        assert main(["verify", "qutrit_tree", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "qutrit_tree" in out and "verified 16 inputs" in out
        assert "he_tree" not in out

    def test_verify_unknown_construction(self):
        with pytest.raises(SystemExit, match="unknown construction"):
            main(["verify", "nope", "-n", "3"])

    def test_verify_undecomposed_wide_circuit(self, capsys):
        # The paper's linear-cost classical check: permutation-level
        # circuits stay fast at widths where dense verification would
        # be hopeless (this is the width-11 variant of the width-14 run).
        assert main(
            ["verify", "qutrit_tree", "-n", "10", "--undecomposed"]
        ) == 0
        out = capsys.readouterr().out
        assert "verified 2048 inputs" in out

    def test_verify_undecomposed_rejected_for_permutation_native(self):
        with pytest.raises(SystemExit, match="does not take"):
            main(["verify", "wang_chain", "-n", "3", "--undecomposed"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCircuitCli:
    def test_save_show_load_round_trip(self, tmp_path, capsys):
        path = tmp_path / "tree.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "4", "--undecomposed", "--out", str(path),
            ]
        ) == 0
        assert path.exists()
        capsys.readouterr()

        assert main(["circuit", "show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "operations=" in out and "@1" in out

        assert main(
            [
                "circuit", "load", str(path), "--backend", "classical",
                "--input", "1", "1", "1", "1", "0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "output values: (1, 1, 1, 1, 1)" in out

    def test_save_to_stdout(self, capsys):
        assert main(
            [
                "circuit", "save", "--construction", "wang_chain",
                "--controls", "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert '"version":2' in out.replace(" ", "")

    def test_saved_circuit_is_loadable_json(self, tmp_path, capsys):
        from repro.circuits.circuit import Circuit
        from repro.toffoli.registry import build_toffoli

        path = tmp_path / "lowered.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "4", "--pipeline", "lowering",
                "--out", str(path), "--pretty",
            ]
        ) == 0
        saved = Circuit.from_json(path.read_text())
        assert saved == build_toffoli("qutrit_tree", 4).circuit

    def test_load_rejects_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit, match="cannot load"):
            main(["circuit", "show", str(path)])
        with pytest.raises(SystemExit, match="cannot read"):
            main(["circuit", "show", str(tmp_path / "missing.json")])


class TestRouteCommand:
    def test_route_default_table(self, capsys):
        assert main(["route", "--controls", "4"]) == 0
        out = capsys.readouterr().out
        assert "routing qutrit_tree(N=4)" in out
        assert "line(5)" in out and "all-to-all(5)" in out
        assert "lookahead" in out

    def test_route_both_routers_with_noise(self, capsys):
        assert main(
            [
                "route", "--controls", "4", "--topology", "line",
                "--router", "both", "--noise", "SC",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "lookahead" in out
        assert "fid~" in out

    def test_route_trajectory_estimate(self, capsys):
        assert main(
            [
                "route", "--controls", "3", "--topology", "line",
                "--noise", "SC", "--trials", "10",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "fid(mc)" in out and "±" in out

    def test_route_trials_require_noise(self):
        with pytest.raises(SystemExit, match="needs --noise"):
            main(["route", "--controls", "3", "--trials", "5"])

    def test_route_unknown_noise_rejected(self):
        with pytest.raises(SystemExit, match="unknown noise model"):
            main(["route", "--controls", "3", "--noise", "NOPE"])

    def test_route_unknown_topology_rejected(self):
        with pytest.raises(SystemExit, match="unknown topology"):
            main(["route", "--controls", "3", "--topology", "torus"])

    def test_route_saved_circuit_file(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(
            [
                "circuit", "save", "--construction", "qutrit_tree",
                "--controls", "3", "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["route", "--file", str(path), "--topology", "ring"]
        ) == 0
        out = capsys.readouterr().out
        assert "ring(4)" in out

    def test_route_router_knobs(self, capsys):
        assert main(
            [
                "route", "--controls", "4", "--topology", "grid_2d",
                "--lookahead", "4", "--placement-trials", "0",
                "--seed", "7",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "grid" in out


def _stub_bench_suites(monkeypatch, *, keep=()):
    # Stub every bench suite except the ones under test, so the bench
    # command stays fast and never rewrites a committed BENCH_*.json
    # from the test run's working directory.
    from repro.analysis import bench as bench_module

    stubs = {
        "noise": (
            ("run_bench", lambda smoke, seed: {"smoke": smoke}),
            ("render_report", lambda report: "noise stub"),
        ),
        "verify": (
            ("run_verify_bench", lambda smoke: {"smoke": smoke}),
            ("render_verify_report", lambda report: "verify stub"),
        ),
        "route": (
            ("run_route_bench", lambda smoke: {"smoke": smoke}),
            ("render_route_report", lambda report: "route stub"),
        ),
        "opt": (
            ("run_opt_bench", lambda smoke: {"smoke": smoke}),
            ("render_opt_report", lambda report: "opt stub"),
        ),
        "serve": (
            ("run_serve_bench", lambda smoke, seed: {"smoke": smoke}),
            ("render_serve_report", lambda report: "serve stub"),
        ),
        "state": (
            ("run_state_bench", lambda smoke: {"smoke": smoke}),
            ("render_state_report", lambda report: "state stub"),
        ),
        "chaos": (
            ("run_chaos_bench", lambda smoke, seed: {"smoke": smoke}),
            ("render_chaos_report", lambda report: "chaos stub"),
        ),
    }
    for suite, patches in stubs.items():
        if suite in keep:
            continue
        for name, stub in patches:
            monkeypatch.setattr(bench_module, name, stub)


#: Silence every per-suite report file the bench command would write.
_BENCH_NO_FILES = [
    "--out", "-", "--verify-out", "-", "--route-out", "-",
    "--opt-out", "-", "--serve-out", "-", "--state-out", "-",
    "--chaos-out", "-",
]


def _bench_args(**overrides):
    args = ["bench", "--smoke", *_BENCH_NO_FILES]
    for flag, value in overrides.items():
        name = "--" + flag.replace("_", "-")
        if name in args:
            args[args.index(name) + 1] = value
        else:
            args.extend([name, value])
    return args


class TestBenchRouteCheck:
    def _fresh_smoke_report(self):
        from repro.analysis.bench import run_route_bench

        return run_route_bench(smoke=True)

    @staticmethod
    def _stub_heavy_suites(monkeypatch):
        _stub_bench_suites(monkeypatch, keep={"route"})

    def test_check_route_passes_against_identical_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        report = self._fresh_smoke_report()
        baseline = tmp_path / "BENCH_route.json"
        baseline.write_text(json.dumps(report))
        self._stub_heavy_suites(monkeypatch)
        assert main(
            _bench_args(
                route_out=str(tmp_path / "fresh.json"),
                check_route=str(baseline),
            )
        ) == 0
        out = capsys.readouterr().out
        assert "regression check passed" in out

    def test_check_route_fails_on_degraded_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        report = self._fresh_smoke_report()
        shrunk = json.loads(json.dumps(report))
        for record in shrunk["records"]:
            record["routed_depth"] = max(
                1, record["routed_depth"] // 10
            )
        baseline = tmp_path / "BENCH_route.json"
        baseline.write_text(json.dumps(shrunk))
        self._stub_heavy_suites(monkeypatch)
        with pytest.raises(SystemExit):
            main(_bench_args(check_route=str(baseline)))
        out = capsys.readouterr().out
        assert "regression check FAILED" in out

    def test_check_route_unreadable_baseline(self, tmp_path, monkeypatch):
        _stub_bench_suites(monkeypatch)
        with pytest.raises(SystemExit, match="cannot read"):
            main(_bench_args(check_route=str(tmp_path / "missing.json")))


class TestBenchOptCheck:
    @pytest.fixture(scope="class")
    def smoke_report(self):
        from repro.analysis.bench import run_opt_bench

        return run_opt_bench(smoke=True)

    def test_check_opt_passes_against_identical_baseline(
        self, smoke_report, tmp_path, capsys, monkeypatch
    ):
        import json

        baseline = tmp_path / "BENCH_opt.json"
        baseline.write_text(json.dumps(smoke_report))
        _stub_bench_suites(monkeypatch, keep={"opt"})
        assert main(
            _bench_args(
                opt_out=str(tmp_path / "fresh.json"),
                check_opt=str(baseline),
            )
        ) == 0
        out = capsys.readouterr().out
        assert "optimizer regression check passed" in out
        assert (tmp_path / "fresh.json").exists()

    def test_check_opt_fails_on_inflated_baseline(
        self, smoke_report, tmp_path, capsys, monkeypatch
    ):
        import json

        inflated = json.loads(json.dumps(smoke_report))
        for record in inflated["records"]:
            record["gates_removed"] += 5
        baseline = tmp_path / "BENCH_opt.json"
        baseline.write_text(json.dumps(inflated))
        _stub_bench_suites(monkeypatch, keep={"opt"})
        with pytest.raises(SystemExit):
            main(_bench_args(check_opt=str(baseline)))
        out = capsys.readouterr().out
        assert "optimizer regression check FAILED" in out

    def test_check_opt_unreadable_baseline(self, tmp_path, monkeypatch):
        _stub_bench_suites(monkeypatch)
        with pytest.raises(SystemExit, match="cannot read"):
            main(_bench_args(check_opt=str(tmp_path / "missing.json")))


class TestOptimizeCommand:
    def test_optimize_reports_reduction(self, capsys):
        assert main(
            ["optimize", "--construction", "he_tree", "--controls", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimizing he_tree(N=3)" in out
        assert "gates 61 -> 41" in out
        assert "cancel-inverses" in out
        assert "equivalence: statevector" in out

    def test_optimize_pass_selection(self, capsys):
        assert main(
            [
                "optimize", "--construction", "he_tree", "--controls", "3",
                "--passes", "cancel-inverses",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cancel-inverses" in out
        assert "fuse-phases" not in out

    def test_optimize_verify_off(self, capsys):
        assert main(
            [
                "optimize", "--construction", "he_tree", "--controls", "3",
                "--verify", "off",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "equivalence:" not in out

    def test_optimize_after_pipeline(self, capsys):
        assert main(
            [
                "optimize", "--construction", "he_tree", "--controls", "3",
                "--pipeline", "hardware-line",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "optimizing he_tree(N=3)" in out

    def test_optimize_writes_circuit(self, tmp_path, capsys):
        from repro.circuits.circuit import Circuit

        path = tmp_path / "opt.json"
        assert main(
            [
                "optimize", "--construction", "he_tree", "--controls", "3",
                "--out", str(path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert Circuit.from_json(path.read_text()).num_operations == 41

    def test_optimize_saved_circuit_file(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        assert main(
            [
                "circuit", "save", "--construction", "he_tree",
                "--controls", "3", "--out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["optimize", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"optimizing {path}" in out
        assert "gates 61 -> 41" in out

    def test_optimize_gate_count_cost_model(self, capsys):
        assert main(
            [
                "optimize", "--construction", "he_tree", "--controls", "3",
                "--cost-model", "gate-count",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "gate-count cost model" in out
