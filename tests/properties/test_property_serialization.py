"""Property-based tests for spec/JSON round-trips and structural identity."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.gates import GATE_REGISTRY, GateSpec, P, RX, RZ, ControlledGate
from repro.gates.base import PermutationGate
from repro.gates.qutrit import clock_gate, phase_gate, shift_gate
from repro.qudits import Qudit

angles = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def registered_gates(draw):
    """A gate drawn from the parameterized registered factories."""
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return RX(draw(angles))
    if kind == 1:
        return RZ(draw(angles))
    if kind == 2:
        return P(draw(angles))
    dim = draw(st.integers(2, 5))
    if kind == 3:
        return shift_gate(dim, draw(st.integers(0, dim - 1)))
    if kind == 4:
        return clock_gate(dim, draw(st.integers(1, dim)))
    level = draw(st.integers(0, dim - 1))
    return phase_gate(dim, level, draw(angles))


@st.composite
def permutation_gates(draw):
    dim = draw(st.integers(2, 6))
    mapping = draw(st.permutations(range(dim)))
    return PermutationGate(list(mapping), (dim,), "perm")


class TestGateRoundTripProperties:
    @settings(max_examples=50)
    @given(registered_gates())
    def test_registered_factories_round_trip(self, gate):
        rebuilt = GATE_REGISTRY.build(
            GateSpec.from_json(gate.spec().to_json())
        )
        assert rebuilt == gate
        assert hash(rebuilt) == hash(gate)
        assert np.array_equal(rebuilt.unitary(), gate.unitary())

    @settings(max_examples=50)
    @given(permutation_gates())
    def test_structural_fallback_round_trips(self, gate):
        rebuilt = GATE_REGISTRY.build(
            GateSpec.from_json(gate.spec().to_json())
        )
        assert rebuilt == gate
        assert np.array_equal(rebuilt.unitary(), gate.unitary())

    @settings(max_examples=25)
    @given(permutation_gates(), st.integers(2, 4), st.data())
    def test_controlled_wrapping_round_trips(self, sub, ctrl_dim, data):
        value = data.draw(st.integers(0, ctrl_dim - 1))
        gate = ControlledGate(sub, (ctrl_dim,), (value,))
        rebuilt = GATE_REGISTRY.build(
            GateSpec.from_json(gate.spec().to_json())
        )
        assert rebuilt == gate


class TestCircuitIdentityProperties:
    @settings(max_examples=25)
    @given(st.lists(registered_gates(), min_size=1, max_size=6))
    def test_circuit_json_round_trip(self, gates):
        circuit = Circuit(
            gate.on(Qudit(i, gate.dims[0]))
            for i, gate in enumerate(gates)
        )
        rebuilt = Circuit.from_json(circuit.to_json())
        assert rebuilt == circuit
        assert hash(rebuilt) == hash(circuit)

    @settings(max_examples=25)
    @given(st.lists(registered_gates(), min_size=1, max_size=6))
    def test_equal_builds_are_interchangeable(self, gates):
        def build():
            return Circuit(
                gate.on(Qudit(i, gate.dims[0]))
                for i, gate in enumerate(gates)
            )

        assert build() == build()
        assert hash(build()) == hash(build())
