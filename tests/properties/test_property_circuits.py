"""Property-based tests for circuit scheduling invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import X01, X02, X12, X_MINUS_1, X_PLUS_1
from repro.qudits import qutrits

SINGLE_GATES = [X01, X02, X12, X_PLUS_1, X_MINUS_1]


@st.composite
def random_permutation_circuits(draw, max_wires=4, max_ops=12):
    num_wires = draw(st.integers(2, max_wires))
    wires = qutrits(num_wires)
    ops = []
    for _ in range(draw(st.integers(1, max_ops))):
        if draw(st.booleans()):
            gate = draw(st.sampled_from(SINGLE_GATES))
            ops.append(gate.on(draw(st.sampled_from(wires))))
        else:
            gate = ControlledGate(
                draw(st.sampled_from(SINGLE_GATES)),
                (3,),
                (draw(st.integers(0, 2)),),
            )
            pair = draw(
                st.lists(
                    st.sampled_from(wires), min_size=2, max_size=2,
                    unique=True,
                )
            )
            ops.append(gate.on(*pair))
    return Circuit(ops), wires


class TestSchedulingInvariants:
    @given(random_permutation_circuits())
    @settings(max_examples=60)
    def test_moments_have_disjoint_wires(self, circuit_and_wires):
        circuit, _ = circuit_and_wires
        for moment in circuit:
            seen = set()
            for op in moment:
                assert seen.isdisjoint(op.qudits)
                seen.update(op.qudits)

    @given(random_permutation_circuits())
    @settings(max_examples=60)
    def test_depth_at_most_op_count(self, circuit_and_wires):
        circuit, _ = circuit_and_wires
        assert circuit.depth <= circuit.num_operations

    @given(random_permutation_circuits())
    @settings(max_examples=60)
    def test_asap_moments_are_tight(self, circuit_and_wires):
        # Every operation after moment 0 must be blocked by some operation
        # in the previous moment (otherwise ASAP would have pulled it in).
        circuit, _ = circuit_and_wires
        for index in range(1, circuit.depth):
            previous = circuit.moments[index - 1]
            for op in circuit.moments[index]:
                assert previous.operates_on(op.qudits)

    @given(random_permutation_circuits())
    @settings(max_examples=60)
    def test_schedule_preserves_per_wire_order(self, circuit_and_wires):
        # Rebuilding from all_operations() yields the same moment layout.
        circuit, _ = circuit_and_wires
        rebuilt = Circuit(list(circuit.all_operations()))
        assert rebuilt.depth == circuit.depth
        assert rebuilt.num_operations == circuit.num_operations


class TestReversibilityInvariants:
    @given(random_permutation_circuits())
    @settings(max_examples=40)
    def test_circuit_plus_inverse_is_identity_classically(
        self, circuit_and_wires
    ):
        circuit, wires = circuit_and_wires
        roundtrip = circuit + circuit.inverse()
        for trial in range(5):
            rng = np.random.default_rng(trial)
            values = {w: int(rng.integers(0, 3)) for w in wires}
            assert roundtrip.classical_map(values) == values

    @given(random_permutation_circuits())
    @settings(max_examples=40)
    def test_classical_map_is_a_bijection(self, circuit_and_wires):
        circuit, wires = circuit_and_wires
        from itertools import product

        outputs = set()
        for values in product(range(3), repeat=len(wires)):
            out = circuit.classical_map(dict(zip(wires, values)))
            outputs.add(tuple(out[w] for w in wires))
        assert len(outputs) == 3 ** len(wires)

    @given(random_permutation_circuits())
    @settings(max_examples=20)
    def test_unitary_matches_classical_map(self, circuit_and_wires):
        circuit, wires = circuit_and_wires
        u = circuit.unitary(wires)
        from repro.gates.base import index_to_values, values_to_index

        dims = [3] * len(wires)
        for col in range(min(10, 3 ** len(wires))):
            values = index_to_values(col, dims)
            out = circuit.classical_map(dict(zip(wires, values)))
            row = values_to_index([out[w] for w in wires], dims)
            assert np.isclose(np.abs(u[row, col]), 1.0)
