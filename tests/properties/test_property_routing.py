"""Property-based tests for the SWAP routers (greedy v1 + lookahead v2).

The central property is *structural equivalence through the placement
permutations*: for every topology / router configuration, the routed
circuit's full classical action (PR 4's ``permutation_vector``),
conjugated by the initial and final placements, equals the original
circuit's action.  That subsumes the per-input spot checks: the routers
may only relabel wires, never change the computed permutation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.router import LookaheadRouter, RouterConfig, resolve_router
from repro.arch.topology import (
    all_to_all,
    grid_2d,
    heavy_hex,
    line,
    random_regular,
    ring,
    star,
    tree,
)
from repro.circuits.circuit import Circuit
from repro.gates.base import index_to_values
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import X01, X02, X_PLUS_1
from repro.qudits import qutrits
from repro.sim.classical import ClassicalSimulator
from repro.sim.classical_batch import BatchedClassicalSimulator
from repro.sim.kernels import mixed_radix_weights

GATES = [X01, X02, X_PLUS_1]


def _topology_for(kind: str, num_wires: int, draw):
    if kind == "line":
        return line(num_wires)
    if kind == "ring":
        return ring(num_wires)
    if kind == "star":
        return star(num_wires)
    if kind == "tree":
        return tree(num_wires, branching=draw(st.integers(1, 3)))
    if kind == "full":
        return all_to_all(num_wires)
    if kind == "random":
        return random_regular(
            max(num_wires, 2), degree=3, seed=draw(st.integers(0, 5))
        )
    if kind == "heavy_hex":
        return heavy_hex(2, 2)  # 7 sites, covers every width drawn
    rows = draw(st.integers(1, 3))
    cols = (num_wires + rows - 1) // rows
    return grid_2d(rows, max(cols, 1))


@st.composite
def circuits_and_topologies(draw):
    num_wires = draw(st.integers(2, 5))
    wires = qutrits(num_wires)
    ops = []
    for _ in range(draw(st.integers(1, 10))):
        gate = ControlledGate(
            draw(st.sampled_from(GATES)), (3,), (draw(st.integers(0, 2)),)
        )
        pair = draw(
            st.lists(
                st.sampled_from(wires), min_size=2, max_size=2, unique=True
            )
        )
        ops.append(gate.on(*pair))
    circuit = Circuit()
    for op in ops:
        circuit.append(op)
        if draw(st.booleans()):
            circuit.barrier()
    kind = draw(
        st.sampled_from(
            [
                "line", "ring", "star", "tree", "grid", "full",
                "random", "heavy_hex",
            ]
        )
    )
    topology = _topology_for(kind, num_wires, draw)
    router = draw(st.sampled_from(["greedy", "lookahead", "tuned"]))
    if router == "tuned":
        router = RouterConfig(
            lookahead=draw(st.integers(0, 8)),
            placement_trials=draw(st.integers(0, 2)),
            seed=draw(st.integers(0, 99)),
        )
    return circuit, wires, topology, router


def _route(circuit, wires, topology, router):
    return resolve_router(router).route(circuit, topology, wires=wires)


class TestRoutingProperties:
    @given(circuits_and_topologies())
    @settings(max_examples=60, deadline=None)
    def test_routed_action_is_structurally_equivalent(self, setup):
        # The satellite property: permutation_vector(routed), composed
        # with the input/output placements, equals the original's
        # permutation_vector for EVERY topology/router configuration.
        circuit, wires, topology, router = setup
        routed = _route(circuit, wires, topology, router)
        sim = BatchedClassicalSimulator()
        v_orig = sim.permutation_vector(circuit, wires)
        v_routed = sim.permutation_vector(routed.circuit, routed.sites)
        wire_dims = [w.dimension for w in wires]
        site_dims = [s.dimension for s in routed.sites]
        site_weights = mixed_radix_weights(site_dims)
        for index in range(len(v_orig)):
            values = index_to_values(index, wire_dims)
            site_values = [0] * len(routed.sites)
            for wire, value in zip(wires, values):
                site_values[routed.initial_placement[wire]] = value
            image = int(
                v_routed[int(np.dot(site_values, site_weights))]
            )
            out_sites = index_to_values(image, site_dims)
            out = tuple(
                out_sites[routed.final_placement[wire]] for wire in wires
            )
            assert out == tuple(index_to_values(int(v_orig[index]), wire_dims))

    @given(circuits_and_topologies(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_routed_circuit_preserves_semantics(self, setup, seed):
        circuit, wires, topology, router = setup
        routed = _route(circuit, wires, topology, router)
        sim = ClassicalSimulator()
        rng = np.random.default_rng(seed)
        values = {w: int(rng.integers(0, 2)) for w in wires}
        expected = sim.run(circuit, values)
        site_values = {site: 0 for site in routed.sites}
        for wire, value in values.items():
            site_values[
                routed.sites[routed.initial_placement[wire]]
            ] = value
        out = sim.run(routed.circuit, site_values)
        for wire in wires:
            assert out[routed.output_site(wire)] == expected[wire]

    @given(circuits_and_topologies())
    @settings(max_examples=40, deadline=None)
    def test_every_two_qudit_gate_lands_on_an_edge(self, setup):
        circuit, wires, topology, router = setup
        routed = _route(circuit, wires, topology, router)
        for op in routed.circuit.all_operations():
            if op.num_qudits == 2:
                a, b = (w.index for w in op.qudits)
                assert topology.are_adjacent(a, b)

    @given(circuits_and_topologies())
    @settings(max_examples=40, deadline=None)
    def test_placements_stay_bijective(self, setup):
        circuit, wires, topology, router = setup
        routed = _route(circuit, wires, topology, router)
        finals = list(routed.final_placement.values())
        assert len(set(finals)) == len(finals)
        initials = list(routed.initial_placement.values())
        assert len(set(initials)) == len(initials)

    @given(circuits_and_topologies())
    @settings(max_examples=30, deadline=None)
    def test_full_connectivity_is_free(self, setup):
        circuit, wires, _, router = setup
        routed = resolve_router(router).route(
            circuit, all_to_all(len(wires)), wires=wires
        )
        assert routed.swap_count == 0
        assert routed.circuit.num_operations == circuit.num_operations

    @given(circuits_and_topologies())
    @settings(max_examples=30, deadline=None)
    def test_barrier_floors_survive(self, setup):
        circuit, wires, topology, router = setup
        routed = _route(circuit, wires, topology, router)
        assert len(routed.circuit.barrier_floors) == len(
            circuit.barrier_floors
        )

    @given(circuits_and_topologies())
    @settings(max_examples=20, deadline=None)
    def test_lookahead_never_loses_to_itself_rerun(self, setup):
        circuit, wires, topology, _ = setup
        first = LookaheadRouter().route(circuit, topology, wires=wires)
        second = LookaheadRouter().route(circuit, topology, wires=wires)
        assert first.swap_count == second.swap_count
        assert first.circuit == second.circuit
