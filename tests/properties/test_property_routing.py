"""Property-based tests for the SWAP router."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.routing import route_circuit
from repro.arch.topology import all_to_all, grid_2d, line
from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import X01, X02, X_PLUS_1
from repro.qudits import qutrits
from repro.sim.classical import ClassicalSimulator

GATES = [X01, X02, X_PLUS_1]


@st.composite
def circuits_and_topologies(draw):
    num_wires = draw(st.integers(2, 6))
    wires = qutrits(num_wires)
    ops = []
    for _ in range(draw(st.integers(1, 10))):
        gate = ControlledGate(
            draw(st.sampled_from(GATES)), (3,), (draw(st.integers(0, 2)),)
        )
        pair = draw(
            st.lists(
                st.sampled_from(wires), min_size=2, max_size=2, unique=True
            )
        )
        ops.append(gate.on(*pair))
    kind = draw(st.sampled_from(["line", "grid", "full"]))
    if kind == "line":
        topology = line(num_wires)
    elif kind == "full":
        topology = all_to_all(num_wires)
    else:
        rows = draw(st.integers(1, 3))
        cols = (num_wires + rows - 1) // rows
        topology = grid_2d(rows, max(cols, 1))
    return Circuit(ops), wires, topology


class TestRoutingProperties:
    @given(circuits_and_topologies(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_routed_circuit_preserves_semantics(self, setup, seed):
        circuit, wires, topology = setup
        routed = route_circuit(circuit, topology, wires=wires)
        sim = ClassicalSimulator()
        rng = np.random.default_rng(seed)
        values = {w: int(rng.integers(0, 2)) for w in wires}
        expected = sim.run(circuit, values)
        site_values = {site: 0 for site in routed.sites}
        for wire, value in values.items():
            site_values[
                routed.sites[routed.initial_placement[wire]]
            ] = value
        out = sim.run(routed.circuit, site_values)
        for wire in wires:
            assert out[routed.output_site(wire)] == expected[wire]

    @given(circuits_and_topologies())
    @settings(max_examples=40, deadline=None)
    def test_every_two_qudit_gate_lands_on_an_edge(self, setup):
        circuit, wires, topology = setup
        routed = route_circuit(circuit, topology, wires=wires)
        for op in routed.circuit.all_operations():
            if op.num_qudits == 2:
                a, b = (w.index for w in op.qudits)
                assert topology.are_adjacent(a, b)

    @given(circuits_and_topologies())
    @settings(max_examples=40, deadline=None)
    def test_placements_stay_bijective(self, setup):
        circuit, wires, topology = setup
        routed = route_circuit(circuit, topology, wires=wires)
        finals = list(routed.final_placement.values())
        assert len(set(finals)) == len(finals)
        initials = list(routed.initial_placement.values())
        assert len(set(initials)) == len(initials)

    @given(circuits_and_topologies())
    @settings(max_examples=30, deadline=None)
    def test_full_connectivity_is_free(self, setup):
        circuit, wires, _ = setup
        routed = route_circuit(
            circuit, all_to_all(len(wires)), wires=wires
        )
        assert routed.swap_count == 0
        assert routed.circuit.num_operations == circuit.num_operations
