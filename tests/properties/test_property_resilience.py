"""Property-based failure matrix for the resilience layer.

The resilience claims are universally quantified — *no* fault site,
rate, or seed may lose a handle, exceed the retry cap, or wedge the
breaker — so they are tested as properties over the (site x rate x
seed) matrix rather than at hand-picked points.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.results import RunResult
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    RetryPolicy,
    TransientServiceError,
    injected,
)
from repro.service import JobQueue, JobState, handle_request

seeds = st.integers(min_value=0, max_value=2**32 - 1)
rates = st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False)


def quick_result(request):
    return RunResult(backend="classical", wires=(), values=(0,))


class TestFaultMatrixOnTheQueue:
    @settings(max_examples=15, deadline=None)
    @given(rate=rates, seed=seeds)
    def test_no_lost_handles_and_retries_capped(self, rate, seed):
        """Any worker.run fault schedule: every handle goes terminal,
        every failure is the injected fault, attempts never exceed the
        policy cap."""
        injector = FaultInjector(rate={"worker.run": rate}, seed=seed)
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.0, max_delay=0.0, seed=seed,
        )
        with JobQueue(
            workers=2, runner=quick_result,
            retry_policy=policy, fault_injector=injector,
        ) as queue:
            jobs = [
                queue.submit(
                    "qutrit_tree", backend="classical",
                    initial=(1, 1, 1, 0), num_controls=3, seed=index,
                )
                for index in range(6)
            ]
            for job in jobs:
                assert job.wait(timeout=60)
        for job in jobs:
            assert job.state in (JobState.DONE, JobState.FAILED)
            assert len(job.attempts) <= policy.max_attempts
            if job.state is JobState.FAILED:
                assert isinstance(job.error, TransientServiceError)
                assert job.attempts[-1].retried is False

    @settings(max_examples=10, deadline=None)
    @given(rate=rates, seed=seeds)
    def test_protocol_site_never_kills_the_dispatcher(self, rate, seed):
        injector = FaultInjector(
            rate={"protocol.request": rate}, seed=seed,
        )
        with JobQueue(workers=1, runner=quick_result) as queue:
            with injected(injector):
                responses = [
                    handle_request(queue, {"op": "ping"})
                    for _ in range(20)
                ]
        for response in responses:
            assert response["ok"] or response.get("transient")


class TestDeterministicBackoff:
    @given(seed=seeds, token=st.text(max_size=20))
    def test_sequence_reproducible_from_seed_and_token(self, seed, token):
        a = RetryPolicy(seed=seed)
        b = RetryPolicy(seed=seed)
        assert a.backoff_sequence(token) == b.backoff_sequence(token)

    @given(
        seed=seeds,
        base=st.floats(min_value=0.001, max_value=1.0),
        cap=st.floats(min_value=0.001, max_value=10.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_delays_bounded_by_cap_plus_jitter(self, seed, base, cap,
                                               jitter):
        policy = RetryPolicy(
            max_attempts=6, base_delay=base,
            max_delay=max(base, cap), jitter=jitter, seed=seed,
        )
        for attempt, delay in enumerate(policy.backoff_sequence("t"), 1):
            ceiling = max(base, cap) * (1.0 + jitter)
            assert 0.0 <= delay <= ceiling

    @given(seed=seeds)
    def test_injector_decision_stream_reproducible(self, seed):
        a = FaultInjector(rate=0.4, seed=seed)
        b = FaultInjector(rate=0.4, seed=seed)
        assert [a.should_inject("store.read") for _ in range(64)] \
            == [b.should_inject("store.read") for _ in range(64)]


class TestBreakerStateMachine:
    @settings(max_examples=200)
    @given(
        ops=st.lists(
            st.sampled_from(["ok", "fail", "tick", "allow"]),
            max_size=60,
        ),
        threshold=st.integers(min_value=1, max_value=5),
    )
    def test_transitions_stay_legal(self, ops, threshold):
        """Arbitrary op sequences: the state stays in the three-state
        machine and the transition edges hold."""
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout=10.0,
            clock=lambda: now[0],
        )
        consecutive = 0
        for op in ops:
            before = breaker.state
            if op == "ok":
                breaker.record_success()
                consecutive = 0
                assert breaker.state == CLOSED
            elif op == "fail":
                breaker.record_failure()
                consecutive += 1
                if before == HALF_OPEN:
                    assert breaker.state == OPEN
                elif before == CLOSED and consecutive >= threshold:
                    assert breaker.state == OPEN
            elif op == "tick":
                now[0] += 10.0
                if before == OPEN:
                    assert breaker.state == HALF_OPEN
            elif op == "allow":
                allowed = breaker.allow()
                if before == CLOSED:
                    assert allowed
            assert breaker.state in (CLOSED, OPEN, HALF_OPEN)

    @given(threshold=st.integers(min_value=1, max_value=8))
    def test_open_half_open_closed_cycle(self, threshold):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold, reset_timeout=5.0,
            clock=lambda: now[0],
        )
        for _ in range(threshold):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        now[0] += 5.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
