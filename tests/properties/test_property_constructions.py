"""Property-based tests over the Generalized Toffoli constructions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.classical import ClassicalSimulator
from repro.sim.statevector import StateVectorSimulator
from repro.toffoli.qutrit_tree import build_qutrit_tree
from repro.toffoli.registry import CONSTRUCTIONS, build_toffoli
from repro.toffoli.spec import GeneralizedToffoli


class TestQutritTreeProperties:
    @given(
        st.integers(1, 10),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_inputs_any_width(self, n, data):
        # Classical check at 3-qutrit-gate granularity on random inputs.
        inputs = tuple(
            data.draw(st.integers(0, 1)) for _ in range(n + 1)
        )
        result = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
        wires = result.controls + [result.target]
        out = ClassicalSimulator().run_values(result.circuit, wires, inputs)
        expected = list(inputs)
        if all(v == 1 for v in inputs[:n]):
            expected[n] ^= 1
        assert out == tuple(expected)

    @given(st.integers(2, 8), st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_binary_activation_patterns(self, n, data):
        values = tuple(
            data.draw(st.integers(0, 1)) for _ in range(n)
        )
        inputs = tuple(
            data.draw(st.integers(0, 1)) for _ in range(n + 1)
        )
        result = build_qutrit_tree(
            GeneralizedToffoli(n, values), decompose=False
        )
        wires = result.controls + [result.target]
        out = ClassicalSimulator().run_values(result.circuit, wires, inputs)
        expected = list(inputs)
        if inputs[:n] == values:
            expected[n] ^= 1
        assert out == tuple(expected)

    @given(st.integers(1, 32))
    @settings(max_examples=30, deadline=None)
    def test_uncompute_mirrors_compute(self, n):
        # Gate counts: an odd total (compute + apply + uncompute) with
        # exactly one unmatched (apply) operation.
        result = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
        assert result.circuit.num_operations % 2 == 1

    @given(st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_depth_is_2floor_log2_plus_1(self, n):
        # At tree granularity, depth = 2 floor(log2 n) + 1 exactly: one
        # moment per tree level each way plus the apply (Figure 5: 7 for
        # N = 15).
        result = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
        expected = 2 * int(np.floor(np.log2(n))) + 1
        assert result.circuit.depth == expected

    @given(st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_gate_count_is_two_slots_plus_one(self, n):
        # One elevation per slot each way plus the apply; each elevation
        # consumes two subtree roots and one fresh control, so there are
        # far fewer than n gates (Figure 5: 7 + 1 + 7 for N = 15).
        from repro.toffoli.qutrit_tree import elevation_slots

        result = build_qutrit_tree(GeneralizedToffoli(n), decompose=False)
        expected = 2 * len(elevation_slots(n)) + 1
        assert result.circuit.num_operations == expected


class TestCrossConstructionProperties:
    @given(
        st.sampled_from(sorted(CONSTRUCTIONS)),
        st.integers(2, 5),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_constructions_agree_on_random_inputs(
        self, name, n, data
    ):
        inputs = tuple(
            data.draw(st.integers(0, 1)) for _ in range(n + 1)
        )
        result = build_toffoli(name, n)
        wires = result.all_wires
        pad = len(wires) - (n + 1)
        values = list(inputs) + [0] * pad
        state = StateVectorSimulator().run_basis(
            result.circuit, wires, values
        )
        expected = list(values)
        if all(v == 1 for v in inputs[:n]):
            expected[n] ^= 1
        assert np.isclose(
            state.probability_of(expected), 1.0, atol=1e-7
        )

    @given(st.sampled_from(sorted(CONSTRUCTIONS)), st.integers(2, 24))
    @settings(max_examples=30, deadline=None)
    def test_controls_and_target_wire_bookkeeping(self, name, n):
        result = build_toffoli(name, n)
        assert len(result.controls) == n
        assert result.target not in result.controls
        circuit_wires = set(result.circuit.all_qudits())
        assert circuit_wires.issubset(set(result.all_wires))
