"""Property-based tests for gate algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates.base import PermutationGate, index_to_values, values_to_index
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import clock_gate, level_swap, shift_gate
from repro.linalg import is_unitary, matrix_root, random_unitary

dims_strategy = st.lists(st.integers(2, 4), min_size=1, max_size=3)


@st.composite
def permutation_gates(draw):
    dim = draw(st.integers(2, 6))
    mapping = draw(st.permutations(range(dim)))
    return PermutationGate(list(mapping), (dim,), "perm")


class TestMixedRadixProperties:
    @given(dims_strategy, st.data())
    def test_encode_decode_roundtrip(self, dims, data):
        total = int(np.prod(dims))
        index = data.draw(st.integers(0, total - 1))
        assert values_to_index(index_to_values(index, dims), dims) == index

    @given(dims_strategy)
    def test_zero_maps_to_zeros(self, dims):
        assert index_to_values(0, dims) == (0,) * len(dims)


class TestPermutationProperties:
    @given(permutation_gates())
    def test_permutation_unitary_is_unitary(self, gate):
        assert is_unitary(gate.unitary())

    @given(permutation_gates())
    def test_inverse_composes_to_identity(self, gate):
        dim = gate.dims[0]
        inv = gate.inverse()
        for v in range(dim):
            assert inv.classical_action(gate.classical_action((v,))) == (v,)

    @given(permutation_gates())
    def test_classical_action_matches_unitary(self, gate):
        u = gate.unitary()
        dim = gate.dims[0]
        for v in range(dim):
            (w,) = gate.classical_action((v,))
            assert np.isclose(u[w, v], 1.0)

    @given(st.integers(2, 6), st.integers(1, 5))
    def test_shift_gates_compose_modularly(self, dim, amount):
        single = shift_gate(dim, 1).unitary()
        accumulated = np.linalg.matrix_power(single, amount)
        assert np.allclose(
            accumulated, shift_gate(dim, amount % dim).unitary()
        )

    @given(st.integers(3, 6), st.data())
    def test_level_swap_is_involution(self, dim, data):
        a = data.draw(st.integers(0, dim - 1))
        b = data.draw(st.integers(0, dim - 1).filter(lambda x: x != a))
        u = level_swap(dim, a, b).unitary()
        assert np.allclose(u @ u, np.eye(dim))


class TestClockProperties:
    @given(st.integers(2, 6))
    def test_clock_has_unit_determinant_phases(self, dim):
        u = clock_gate(dim).unitary()
        assert np.allclose(np.abs(np.diagonal(u)), 1.0)

    @given(st.integers(2, 6))
    def test_clock_to_the_d_is_identity(self, dim):
        u = clock_gate(dim).unitary()
        assert np.allclose(np.linalg.matrix_power(u, dim), np.eye(dim))

    @given(st.integers(2, 5))
    def test_weyl_commutation(self, dim):
        # Z X = w X Z (generalized Pauli commutation relation, with
        # X|v> = |v+1> and Z|v> = w^v |v>).
        x = shift_gate(dim, 1).unitary()
        z = clock_gate(dim).unitary()
        omega = np.exp(2j * np.pi / dim)
        assert np.allclose(z @ x, omega * (x @ z))


class TestMatrixRootProperties:
    @given(st.integers(2, 5), st.integers(2, 4), st.integers(0, 1000))
    @settings(max_examples=30)
    def test_kth_root_composes(self, dim, k, seed):
        u = random_unitary(dim, np.random.default_rng(seed))
        root = matrix_root(u, 1.0 / k)
        acc = np.eye(dim)
        for _ in range(k):
            acc = root @ acc
        assert np.allclose(acc, u, atol=1e-7)


class TestControlledProperties:
    @given(permutation_gates(), st.integers(2, 4), st.data())
    def test_controlled_identity_off_branch(self, sub, ctrl_dim, data):
        value = data.draw(st.integers(0, ctrl_dim - 1))
        gate = ControlledGate(sub, (ctrl_dim,), (value,))
        for c in range(ctrl_dim):
            for t in range(sub.dims[0]):
                out = gate.classical_action((c, t))
                if c == value:
                    assert out == (c,) + sub.classical_action((t,))
                else:
                    assert out == (c, t)

    @given(permutation_gates(), st.integers(2, 4), st.data())
    def test_controlled_unitary_is_unitary(self, sub, ctrl_dim, data):
        value = data.draw(st.integers(0, ctrl_dim - 1))
        gate = ControlledGate(sub, (ctrl_dim,), (value,))
        assert is_unitary(gate.unitary())
