"""Property-based tests for the qubit<->qutrit interop layer.

The headline invariants: lowering inverts lifting exactly, lifted
circuits act identically on the qubit subspace (checked classically for
permutation circuits and by statevector otherwise), mixed-dimension
controlled gates agree across all four engines, and EmbeddedGate
circuits plus PipelineSpecs survive serialization with stable
fingerprints.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.execution import PipelineSpec, PipelineStage, execute
from repro.execution.cache import circuit_fingerprint
from repro.gates.base import PermutationGate
from repro.gates.controlled import ControlledGate
from repro.gates.embedded import EmbeddedGate
from repro.gates.qubit import CNOT, CZ, H, S, SWAP, T, TOFFOLI, X
from repro.gates.qutrit import shift_gate
from repro.interop import lift_circuit, lower_circuit, subspace_equivalent
from repro.noise.model import NoiseModel
from repro.qudits import Qudit
from repro.sim.classical_batch import BatchedClassicalSimulator

NOISELESS = NoiseModel("clean", 0.0, 0.0, 1e-7, 3e-7, t1=None)

_ONE_QUBIT = (H, S, T, X)
_TWO_QUBIT = (CNOT, CZ, SWAP)
_CLASSICAL_ONE = (X,)
_CLASSICAL_TWO = (CNOT, SWAP)


@st.composite
def qubit_circuits(draw, classical=False):
    """A random qubit circuit on 2-4 wires, optionally permutation-only."""
    width = draw(st.integers(2, 4))
    wires = [Qudit(i, 2) for i in range(width)]
    one = _CLASSICAL_ONE if classical else _ONE_QUBIT
    two = _CLASSICAL_TWO if classical else _TWO_QUBIT
    ops = []
    for _ in range(draw(st.integers(1, 8))):
        kind = draw(st.integers(0, 2 if width >= 3 else 1))
        if kind == 0:
            gate = draw(st.sampled_from(one))
            ops.append(gate.on(draw(st.sampled_from(wires))))
        elif kind == 1:
            gate = draw(st.sampled_from(two))
            a, b = draw(
                st.permutations(wires).map(lambda p: p[:2])
            )
            ops.append(gate.on(a, b))
        else:
            a, b, c = draw(
                st.permutations(wires).map(lambda p: p[:3])
            )
            ops.append(TOFFOLI.on(a, b, c))
    return Circuit(ops)


class TestLiftLowerIdentity:
    @settings(max_examples=40, deadline=None)
    @given(qubit_circuits())
    def test_lower_inverts_lift(self, circuit):
        assert lower_circuit(lift_circuit(circuit)) == circuit

    @settings(max_examples=20, deadline=None)
    @given(qubit_circuits(), st.integers(3, 5))
    def test_lower_inverts_lift_any_dimension(self, circuit, dim):
        assert lower_circuit(lift_circuit(circuit, dim=dim)) == circuit


class TestSubspaceParity:
    @settings(max_examples=25, deadline=None)
    @given(qubit_circuits())
    def test_lift_preserves_subspace_action(self, circuit):
        assert subspace_equivalent(circuit, lift_circuit(circuit))


class TestPermutationVectorEquality:
    @settings(max_examples=25, deadline=None)
    @given(qubit_circuits(classical=True))
    def test_lifted_classical_action_matches(self, circuit):
        lifted = lift_circuit(circuit)
        wires = circuit.all_qudits()
        lifted_wires = lifted.all_qudits()
        simulator = BatchedClassicalSimulator()
        inputs = simulator.input_space(wires)
        original = simulator.run_array(circuit, wires, inputs)
        promoted = simulator.run_array(lifted, lifted_wires, inputs)
        assert np.array_equal(original, promoted)

    @settings(max_examples=40, deadline=None)
    @given(st.permutations(range(2)), st.integers(3, 6))
    def test_embedded_permutation_extends_with_fixed_points(
        self, mapping, dim
    ):
        gate = PermutationGate(list(mapping), (2,), "p")
        table = EmbeddedGate(gate, (dim,)).permutation()
        assert list(table[:2]) == list(mapping)
        assert list(table[2:]) == list(range(2, dim))


class TestMixedDimensionControlParity:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(2, 4),
        st.data(),
    )
    def test_four_engines_agree(self, control_dim, target_dim, data):
        control_value = data.draw(st.integers(0, control_dim - 1))
        prepared = data.draw(st.integers(0, control_dim - 1))
        shift = data.draw(st.integers(1, target_dim - 1))
        control = Qudit(0, control_dim)
        target = Qudit(1, target_dim)
        circuit = Circuit(
            [
                shift_gate(control_dim, prepared).on(control),
                ControlledGate(
                    shift_gate(target_dim, shift),
                    (control_dim,),
                    (control_value,),
                ).on(control, target),
            ]
        )
        wires = [control, target]
        expected_target = shift if prepared == control_value else 0
        classical = execute(circuit, backend="classical", wires=wires)
        assert classical.values == (prepared, expected_target)
        statevector = execute(
            circuit, backend="statevector", wires=wires
        )
        assert np.isclose(
            statevector.probability_of(classical.values), 1.0, atol=1e-9
        )
        density = execute(
            circuit,
            backend="density",
            noise_model=NOISELESS,
            wires=wires,
        )
        assert np.isclose(
            density.probability_of(classical.values), 1.0, atol=1e-9
        )
        trajectory = execute(
            circuit,
            backend="trajectory",
            noise_model=NOISELESS,
            wires=wires,
            trials=3,
            seed=11,
        )
        assert np.isclose(trajectory.mean_fidelity, 1.0, atol=1e-6)


class TestSerializationRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(qubit_circuits())
    def test_lifted_circuit_json_and_fingerprint(self, circuit):
        lifted = lift_circuit(circuit)
        rebuilt = Circuit.from_json(lifted.to_json())
        assert rebuilt == lifted
        assert circuit_fingerprint(rebuilt) == circuit_fingerprint(lifted)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.one_of(
                st.builds(
                    lambda d: PipelineStage("lift", {"dim": d}),
                    st.integers(3, 5),
                ),
                st.builds(
                    lambda b: PipelineStage("decompose", {"basis": b}),
                    st.sampled_from(["width2", "qubit"]),
                ),
                st.builds(
                    lambda label: PipelineStage(
                        "optimize", {"label": label}
                    ),
                    st.text(
                        alphabet="abcdefgh", min_size=1, max_size=6
                    ),
                ),
                st.builds(
                    lambda t: PipelineStage("route", {"topology": t}),
                    st.sampled_from(["line", "grid_2d", "heavy_hex"]),
                ),
                st.builds(
                    lambda v: PipelineStage("lower", {"verify": v}),
                    st.booleans(),
                ),
                st.builds(
                    lambda m: PipelineStage("schedule", {"mode": m}),
                    st.sampled_from(["merge", "asap"]),
                ),
            ),
            max_size=6,
        )
    )
    def test_pipeline_spec_round_trip(self, stages):
        spec = PipelineSpec("fuzz", tuple(stages))
        rebuilt = PipelineSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert hash(rebuilt) == hash(spec)
        assert rebuilt.build().pass_names == spec.build().pass_names
