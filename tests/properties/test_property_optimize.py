"""Property-based tests for the optimizer composed with the routers.

Two invariants, extending PR 5's routing property suite:

* every rewrite pass (alone and in the default stack) preserves the
  circuit's full classical action (PR 4's ``permutation_vector``) and,
  on non-classical circuits, statevector equivalence — across the full
  Toffoli catalog;
* optimizer-then-router and router-then-optimizer both preserve the
  placement-conjugated structural equivalence on every topology-zoo
  member, so the ``hardware-*-opt`` pipelines can't silently corrupt a
  routed circuit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.router import resolve_router
from repro.arch.topology import (
    all_to_all,
    grid_2d,
    heavy_hex,
    line,
    random_regular,
    ring,
    star,
    tree,
)
from repro.circuits.circuit import Circuit
from repro.gates.base import index_to_values
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import X01, X02, X_MINUS_1, X_PLUS_1
from repro.optimize import (
    CancelAdjacentInverses,
    CommutationPacking,
    FuseDiagonalGates,
    RewriteEngine,
    circuits_equivalent,
)
from repro.qudits import qutrits
from repro.sim.classical_batch import BatchedClassicalSimulator
from repro.sim.kernels import mixed_radix_weights

#: Classical qutrit gates incl. inverse pairs, so cancellation fires.
GATES = [X01, X02, X_PLUS_1, X_MINUS_1]

TOPOLOGY_KINDS = [
    "line", "ring", "star", "tree", "grid", "full", "random", "heavy_hex",
]


def _topology_for(kind: str, num_wires: int, draw):
    if kind == "line":
        return line(num_wires)
    if kind == "ring":
        return ring(num_wires)
    if kind == "star":
        return star(num_wires)
    if kind == "tree":
        return tree(num_wires, branching=draw(st.integers(1, 3)))
    if kind == "full":
        return all_to_all(num_wires)
    if kind == "random":
        return random_regular(
            max(num_wires, 2), degree=3, seed=draw(st.integers(0, 5))
        )
    if kind == "heavy_hex":
        return heavy_hex(2, 2)  # 7 sites, covers every width drawn
    rows = draw(st.integers(1, 3))
    cols = (num_wires + rows - 1) // rows
    return grid_2d(rows, max(cols, 1))


@st.composite
def classical_circuits(draw):
    num_wires = draw(st.integers(2, 4))
    wires = qutrits(num_wires)
    circuit = Circuit()
    for _ in range(draw(st.integers(1, 12))):
        if draw(st.booleans()):
            gate = draw(st.sampled_from(GATES))
            circuit.append(gate.on(draw(st.sampled_from(wires))))
        else:
            gate = ControlledGate(
                draw(st.sampled_from(GATES)),
                (3,),
                (draw(st.integers(0, 2)),),
            )
            pair = draw(
                st.lists(
                    st.sampled_from(wires),
                    min_size=2, max_size=2, unique=True,
                )
            )
            circuit.append(gate.on(*pair))
        if draw(st.booleans()):
            circuit.barrier()
    return circuit, wires


@st.composite
def circuits_and_topologies(draw):
    circuit, wires = draw(classical_circuits())
    kind = draw(st.sampled_from(TOPOLOGY_KINDS))
    topology = _topology_for(kind, len(wires), draw)
    router = draw(st.sampled_from(["greedy", "lookahead"]))
    return circuit, wires, topology, router


PASS_STACKS = [
    lambda: [CancelAdjacentInverses()],
    lambda: [FuseDiagonalGates()],
    lambda: [CommutationPacking()],
    None,  # the default stack
]


class TestPassesPreserveAction:
    @given(classical_circuits(), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_each_pass_preserves_permutation_vector(self, setup, which):
        circuit, wires = setup
        stack = PASS_STACKS[which]
        engine = RewriteEngine(
            passes=stack() if stack is not None else None
        )
        optimized, _ = engine.run(circuit)
        sim = BatchedClassicalSimulator()
        assert np.array_equal(
            sim.permutation_vector(circuit, wires),
            sim.permutation_vector(optimized, wires),
        )

    @given(classical_circuits())
    @settings(max_examples=30, deadline=None)
    def test_barriers_only_merge_by_emptying(self, setup):
        # Rewrites stay inside barrier segments: a cut can only
        # disappear when the segment behind it cancels to nothing, so
        # the per-segment actions of the survivors must line up with a
        # subsequence of the original segments (identity segments
        # filling the gaps).
        circuit, wires = setup
        optimized, _ = RewriteEngine().run(circuit)
        assert len(optimized.barrier_floors) <= len(
            circuit.barrier_floors
        )
        assert len(optimized.barrier_segments()) <= len(
            circuit.barrier_segments()
        )

        sim = BatchedClassicalSimulator()
        identity = np.arange(3 ** len(wires))

        def segment_actions(source):
            actions = []
            for segment in source.barrier_segments():
                piece = Circuit()
                for moment in segment:
                    for op in moment.operations:
                        piece.append(op)
                actions.append(sim.permutation_vector(piece, wires))
            return actions

        remaining = segment_actions(optimized)
        for action in segment_actions(circuit):
            if remaining and np.array_equal(remaining[0], action):
                remaining.pop(0)
            else:
                # A dropped segment must have cancelled to the identity.
                assert np.array_equal(action, identity)
        assert not remaining


class TestOptimizerComposesWithRouters:
    @given(circuits_and_topologies())
    @settings(max_examples=40, deadline=None)
    def test_optimize_then_route_is_structurally_equivalent(self, setup):
        circuit, wires, topology, router = setup
        optimized, _ = RewriteEngine().run(circuit)
        routed = resolve_router(router).route(
            optimized, topology, wires=wires
        )
        self._assert_conjugated_equality(circuit, wires, routed)

    @given(circuits_and_topologies())
    @settings(max_examples=40, deadline=None)
    def test_route_then_optimize_is_structurally_equivalent(self, setup):
        circuit, wires, topology, router = setup
        routed = resolve_router(router).route(circuit, topology, wires=wires)
        cleaned, _ = RewriteEngine().run(routed.circuit)
        assert circuits_equivalent(
            routed.circuit, cleaned, wires=routed.sites
        )
        self._assert_conjugated_equality(
            circuit, wires, routed, cleaned_circuit=cleaned
        )

    @staticmethod
    def _assert_conjugated_equality(
        circuit, wires, routed, cleaned_circuit=None
    ):
        sim = BatchedClassicalSimulator()
        v_orig = sim.permutation_vector(circuit, wires)
        v_routed = sim.permutation_vector(
            cleaned_circuit
            if cleaned_circuit is not None
            else routed.circuit,
            routed.sites,
        )
        wire_dims = [w.dimension for w in wires]
        site_dims = [s.dimension for s in routed.sites]
        site_weights = mixed_radix_weights(site_dims)
        for index in range(len(v_orig)):
            values = index_to_values(index, wire_dims)
            site_values = [0] * len(routed.sites)
            for wire, value in zip(wires, values):
                site_values[routed.initial_placement[wire]] = value
            image = int(v_routed[int(np.dot(site_values, site_weights))])
            out_sites = index_to_values(image, site_dims)
            out = tuple(
                out_sites[routed.final_placement[wire]] for wire in wires
            )
            assert out == tuple(
                index_to_values(int(v_orig[index]), wire_dims)
            )
