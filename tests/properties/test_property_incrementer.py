"""Property-based tests for the incrementer and constant adders."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.arithmetic import add_constant_ops, controlled_add_constant_ops
from repro.apps.incrementer import (
    conditional_increment_ops,
    qutrit_incrementer_circuit,
)
from repro.circuits.circuit import Circuit
from repro.qudits import Qudit, qutrits
from repro.sim.classical import ClassicalSimulator

SIM = ClassicalSimulator()


def _bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def _value(bits):
    return sum(b << i for i, b in enumerate(bits))


class TestIncrementerProperties:
    @given(st.integers(1, 12), st.data())
    @settings(max_examples=60, deadline=None)
    def test_increment_random_values(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        circuit, register = qutrit_incrementer_circuit(
            width, decompose=False
        )
        out = SIM.run_values(circuit, register, _bits(value, width))
        assert _value(out) == (value + 1) % (1 << width)
        assert all(b <= 1 for b in out)

    @given(st.integers(1, 10), st.data())
    @settings(max_examples=30, deadline=None)
    def test_increment_then_inverse_is_identity(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        circuit, register = qutrit_incrementer_circuit(
            width, decompose=False
        )
        roundtrip = circuit + circuit.inverse()
        out = SIM.run_values(roundtrip, register, _bits(value, width))
        assert _value(out) == value

    @given(st.integers(1, 8), st.integers(1, 40), st.data())
    @settings(max_examples=20, deadline=None)
    def test_k_increments_add_k(self, width, k, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        circuit, register = qutrit_incrementer_circuit(
            width, decompose=False
        )
        bits = _bits(value, width)
        for _ in range(k):
            bits = list(SIM.run_values(circuit, register, bits))
        assert _value(bits) == (value + k) % (1 << width)


class TestAdderProperties:
    @given(st.integers(1, 10), st.data())
    @settings(max_examples=60, deadline=None)
    def test_add_constant_matches_modular_arithmetic(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        constant = data.draw(st.integers(0, (1 << width) - 1))
        register = qutrits(width)
        circuit = Circuit(
            add_constant_ops(register, constant, decompose=False)
        )
        out = SIM.run_values(circuit, register, _bits(value, width))
        assert _value(out) == (value + constant) % (1 << width)

    @given(st.integers(2, 8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_controlled_add_is_conditional(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        constant = data.draw(st.integers(1, (1 << width) - 1))
        control_state = data.draw(st.integers(0, 2))
        register = qutrits(width)
        control = Qudit(width, 3)
        circuit = Circuit(
            controlled_add_constant_ops(
                register, constant, control, 1, decompose=False
            )
        )
        out = SIM.run_values(
            circuit,
            register + [control],
            _bits(value, width) + [control_state],
        )
        expected = (
            (value + constant) % (1 << width)
            if control_state == 1
            else value
        )
        assert _value(out[:width]) == expected

    @given(st.integers(1, 8), st.data())
    @settings(max_examples=30, deadline=None)
    def test_conditional_increment_preserves_carry_wire(self, width, data):
        value = data.draw(st.integers(0, (1 << width) - 1))
        carry_state = data.draw(st.integers(0, 2))
        register = qutrits(width)
        carry = Qudit(width, 3)
        circuit = Circuit(
            conditional_increment_ops(register, carry, 2, decompose=False)
        )
        out = SIM.run_values(
            circuit, register + [carry], _bits(value, width) + [carry_state]
        )
        assert out[width] == carry_state
