"""Property-based tests for the statevector-v2 engine.

The permutation fast path (segment-composed gathers) is pinned against
the dense contraction oracle — the pre-v2 engine preserved as
``StateVectorSimulator(permutation_fast_path=False)`` — across random
circuits, the Toffoli construction catalog, both amplitude precisions,
and circuits emerging from the optimizer and router pipelines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import (
    QUTRIT_H,
    X01,
    X02,
    X12,
    X_MINUS_1,
    X_PLUS_1,
)
from repro.qudits import qutrits
from repro.sim.state import StateVector
from repro.sim.statevector import StateVectorSimulator
from repro.toffoli.registry import build_toffoli

PERMUTATION_GATES = [X01, X02, X12, X_PLUS_1, X_MINUS_1]

FAST = StateVectorSimulator()
DENSE = StateVectorSimulator(permutation_fast_path=False)


@st.composite
def random_circuits(draw, max_wires=4, max_ops=16, dense_gates=True):
    """Random qutrit circuits; permutation-only unless ``dense_gates``.

    With ``dense_gates`` the mix includes the (non-classical) qutrit
    Fourier gate, so the simulator's segment batching has to flush
    around genuinely dense kernels — the interleaving the fast path
    must survive.
    """
    num_wires = draw(st.integers(2, max_wires))
    wires = qutrits(num_wires)
    ops = []
    for _ in range(draw(st.integers(1, max_ops))):
        kind = draw(st.integers(0, 2 if dense_gates else 1))
        if kind == 0:
            gate = draw(st.sampled_from(PERMUTATION_GATES))
            ops.append(gate.on(draw(st.sampled_from(wires))))
        elif kind == 1:
            gate = ControlledGate(
                draw(st.sampled_from(PERMUTATION_GATES)),
                (3,),
                (draw(st.integers(0, 2)),),
            )
            pair = draw(
                st.lists(
                    st.sampled_from(wires), min_size=2, max_size=2,
                    unique=True,
                )
            )
            ops.append(gate.on(*pair))
        else:
            ops.append(QUTRIT_H.on(draw(st.sampled_from(wires))))
    return Circuit(ops), wires


def run_both(circuit, wires, seed):
    initial = StateVector.random(wires, np.random.default_rng(seed))
    fast = FAST.run(circuit, initial)
    dense = DENSE.run(circuit, initial)
    return fast, dense


class TestFastPathParity:
    @given(random_circuits(dense_gates=False), st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_permutation_circuits_agree_exactly(
        self, circuit_and_wires, seed
    ):
        # A permutation gather moves amplitudes by exact ones and
        # zeros: parity with the dense oracle is exact, not approximate.
        circuit, wires = circuit_and_wires
        fast, dense = run_both(circuit, wires, seed)
        assert np.array_equal(fast.vector, dense.vector)

    @given(random_circuits(dense_gates=True), st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_mixed_circuits_agree(self, circuit_and_wires, seed):
        # Dense gates break the permutation segments; the flushed
        # prefix/suffix gathers must still compose with the dense
        # contraction to machine precision.
        circuit, wires = circuit_and_wires
        fast, dense = run_both(circuit, wires, seed)
        np.testing.assert_allclose(
            fast.vector, dense.vector, atol=1e-12, rtol=0
        )

    @pytest.mark.parametrize(
        "construction, kwargs",
        [
            ("qutrit_tree", {"decompose": False}),
            ("qubit_one_dirty", {}),
            ("he_tree", {}),
            ("wang_chain", {}),
            ("lanyon_target", {}),
        ],
    )
    def test_toffoli_catalog_parity(self, construction, kwargs):
        # The undecomposed catalog is permutation-heavy by design
        # (the paper's whole point); every construction must agree
        # exactly with the dense oracle on a random input.
        result = build_toffoli(construction, 4, **kwargs)
        wires = result.circuit.all_qudits()
        fast, dense = run_both(
            result.circuit, wires, seed=20190608
        )
        assert np.array_equal(fast.vector, dense.vector)


class TestPrecisionBounds:
    @given(random_circuits(dense_gates=True), st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_complex64_within_documented_bound(
        self, circuit_and_wires, seed
    ):
        # docs/SIMULATORS.md documents the bulk-mode parity bound:
        # max |psi64 - psi128| <= operations * sqrt(dim) * 1e-7.
        circuit, wires = circuit_and_wires
        initial = StateVector.random(wires, np.random.default_rng(seed))
        exact = FAST.run(circuit, initial)
        bulk = StateVectorSimulator(dtype=np.complex64).run(
            circuit, initial
        )
        assert bulk.dtype == np.complex64
        bound = (
            circuit.num_operations
            * np.sqrt(exact.vector.size)
            * 1e-7
        )
        diff = np.abs(
            bulk.vector.astype(np.complex128) - exact.vector
        ).max()
        assert diff <= bound

    @given(random_circuits(dense_gates=False), st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_complex64_permutations_are_rounding_free(
        self, circuit_and_wires, seed
    ):
        # The gather path never multiplies, so complex64 permutation
        # circuits lose no precision at all relative to their input.
        circuit, wires = circuit_and_wires
        initial = StateVector.random(
            wires, np.random.default_rng(seed)
        ).astype(np.complex64)
        bulk = FAST.run(circuit, initial)
        dense = DENSE.run(circuit, initial.astype(np.complex128))
        assert bulk.dtype == np.complex64
        assert np.array_equal(
            np.sort(np.abs(bulk.vector)),
            np.sort(np.abs(initial.vector)),
        )
        np.testing.assert_allclose(
            bulk.vector.astype(np.complex128),
            dense.vector,
            atol=1e-6,
            rtol=0,
        )


class TestPipelineComposition:
    @given(random_circuits(dense_gates=False), st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_fast_path_agrees_on_optimized_circuits(
        self, circuit_and_wires, seed
    ):
        # The optimizer's rewrites (inverse cancellation, rotation
        # merging, ...) produce exactly the op mixes the segment
        # batching sees in production; parity must survive them.
        from repro.optimize.engine import optimize_circuit

        circuit, wires = circuit_and_wires
        optimized, _ = optimize_circuit(circuit)
        initial = StateVector.random(wires, np.random.default_rng(seed))
        fast = FAST.run(optimized, initial, wires=wires)
        dense = DENSE.run(circuit, initial)
        np.testing.assert_allclose(
            fast.vector, dense.vector, atol=1e-9, rtol=0
        )

    @given(random_circuits(dense_gates=False), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_fast_path_agrees_on_routed_circuits(
        self, circuit_and_wires, seed
    ):
        # Routing relabels wires onto device sites and inserts SWAPs
        # (themselves permutations); the routed circuit must evolve
        # site amplitudes exactly as the dense oracle does.
        from repro.arch.routing import route_circuit
        from repro.arch.topology import line

        circuit, wires = circuit_and_wires
        routed = route_circuit(circuit, line(len(wires)))
        site_wires = routed.circuit.all_qudits() or routed.sites
        fast, dense = run_both(routed.circuit, site_wires, seed)
        assert np.array_equal(fast.vector, dense.vector)
