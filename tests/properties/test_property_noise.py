"""Property-based tests for noise channels and trajectory invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import Circuit
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.damping import amplitude_damping_channel, damping_lambdas
from repro.noise.depolarizing import (
    single_qudit_depolarizing,
    two_qudit_depolarizing,
)
from repro.noise.model import NoiseModel
from repro.qudits import Qudit, qutrits
from repro.sim.state import StateVector
from repro.sim.trajectory import TrajectorySimulator

probabilities = st.floats(0.0, 1e-2)
small_probabilities = st.floats(0.0, 1e-4)


class TestChannelProperties:
    @given(st.integers(2, 5), probabilities)
    def test_single_qudit_error_budget(self, dim, p):
        channel = single_qudit_depolarizing(dim, p)
        assert np.isclose(
            channel.error_probability, (dim * dim - 1) * p
        )

    @given(st.integers(2, 4), st.integers(2, 4), small_probabilities)
    @settings(deadline=None)  # first call pays the channel-cache warmup
    def test_two_qudit_error_budget(self, da, db, p):
        channel = two_qudit_depolarizing(da, db, p)
        assert np.isclose(
            channel.error_probability, ((da * db) ** 2 - 1) * p
        )

    @given(
        st.floats(1e-9, 1e-3),
        st.floats(1e-5, 1e-1),
        st.integers(2, 5),
    )
    def test_damping_lambdas_monotone_in_level(self, dt, t1, dim):
        lams = damping_lambdas(dt, t1, dim)
        assert all(0 <= lam <= 1 for lam in lams)
        assert list(lams) == sorted(lams)

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    def test_damping_channel_trace_preserving(self, lam1, lam2):
        channel = amplitude_damping_channel(3, (lam1, lam2))
        total = sum(
            op.conj().T @ op for op in channel.operators
        )
        assert np.allclose(total, np.eye(3), atol=1e-9)

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99), st.data())
    @settings(max_examples=30)
    def test_damping_branch_probabilities_normalised(
        self, lam1, lam2, data
    ):
        channel = amplitude_damping_channel(3, (lam1, lam2))
        wire = Qudit(0, 3)
        level = data.draw(st.integers(0, 2))
        state = StateVector.computational_basis([wire], (level,))
        probs = channel.branch_probabilities(state, [wire])
        assert np.isclose(probs.sum(), 1.0)


class TestTrajectoryProperties:
    @given(probabilities, probabilities, st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_trajectory_state_stays_normalised(self, p1, p2, seed):
        model = NoiseModel("prop", p1, p2, 1e-7, 3e-7, t1=1e-4)
        wires = qutrits(3)
        circuit = Circuit(
            [
                X_PLUS_1.on(wires[0]),
                ControlledGate(X01, (3,), (1,)).on(wires[0], wires[1]),
                ControlledGate(X01, (3,), (1,)).on(wires[1], wires[2]),
            ]
        )
        sim = TrajectorySimulator(model, np.random.default_rng(seed))
        initial = StateVector.zero(wires)
        result = sim.run_trajectory(circuit, initial)
        assert 0.0 <= result.fidelity <= 1.0 + 1e-9

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_zero_noise_means_unit_fidelity(self, seed):
        model = NoiseModel("clean", 0.0, 0.0, 1e-7, 3e-7, t1=None)
        wires = qutrits(2)
        circuit = Circuit(
            [ControlledGate(X_PLUS_1, (3,), (1,)).on(wires[0], wires[1])]
        )
        sim = TrajectorySimulator(model, np.random.default_rng(seed))
        initial = sim.random_binary_input(wires)
        result = sim.run_trajectory(circuit, initial)
        assert np.isclose(result.fidelity, 1.0, atol=1e-9)

    @given(st.floats(1e-4, 1e-3))
    @settings(max_examples=10, deadline=None)
    def test_more_noise_lower_mean_fidelity(self, p):
        wires = qutrits(2)
        circuit = Circuit(
            [
                ControlledGate(X_PLUS_1, (3,), (1,)).on(wires[0], wires[1])
                for _ in range(10)
            ]
        )

        def mean_fidelity(p2):
            model = NoiseModel("m", 0.0, p2, 1e-7, 3e-7, t1=None)
            sim = TrajectorySimulator(
                model, np.random.default_rng(7)
            )
            return np.mean(
                [
                    sim.run_trajectory(
                        circuit, StateVector.zero(wires)
                    ).fidelity
                    for _ in range(40)
                ]
            )

        assert mean_fidelity(10 * p) <= mean_fidelity(p) + 0.05
