"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import ClassicalSimulator, StateVectorSimulator


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests that need randomness share this seed."""
    return np.random.default_rng(20190622)  # the paper's conference date


@pytest.fixture
def classical_sim() -> ClassicalSimulator:
    return ClassicalSimulator()


@pytest.fixture
def state_sim() -> StateVectorSimulator:
    return StateVectorSimulator()
