"""Tests for Grover search (Sec. 5.2)."""

import numpy as np
import pytest

from repro.apps.grover import GroverSearch
from repro.exceptions import DecompositionError


class TestSearch:
    @pytest.mark.parametrize("marked", [0, 3, 5, 7])
    def test_three_bit_search_finds_marked(self, marked):
        search = GroverSearch(3, marked)
        assert search.success_probability() > 0.9

    @pytest.mark.parametrize("marked", [0, 9, 15])
    def test_four_bit_search_finds_marked(self, marked):
        search = GroverSearch(4, marked)
        assert search.success_probability() > 0.9

    def test_two_bit_search_is_exact(self):
        # M=4 with one marked item: a single iteration succeeds exactly.
        search = GroverSearch(2, 1)
        assert np.isclose(search.success_probability(1), 1.0, atol=1e-7)

    def test_qubit_construction_matches_qutrit(self):
        for marked in (2, 6):
            p_qutrit = GroverSearch(3, marked).success_probability()
            p_qubit = GroverSearch(
                3, marked, construction="qubit_cascade"
            ).success_probability()
            assert np.isclose(p_qutrit, p_qubit, atol=1e-6)

    def test_amplification_grows_then_overshoots(self):
        search = GroverSearch(4, 11)
        probabilities = [
            search.success_probability(k) for k in (0, 1, 2, 3, 4)
        ]
        assert probabilities[0] < probabilities[1] < probabilities[3]
        # Past the optimum the probability turns around (rotation picture).
        assert search.success_probability(6) < search.success_probability(3)

    def test_zero_iterations_is_uniform(self):
        search = GroverSearch(3, 4)
        assert np.isclose(search.success_probability(0), 1 / 8, atol=1e-9)


class TestStructure:
    def test_optimal_iterations(self):
        assert GroverSearch(2, 0).optimal_iterations() == 1
        assert GroverSearch(4, 0).optimal_iterations() == 3

    def test_qutrit_register_binary_output(self):
        # The search register never shows |2> population at the end.
        from repro.sim.statevector import StateVectorSimulator

        search = GroverSearch(3, 6)
        circuit = search.build_circuit()
        state = StateVectorSimulator().run(circuit, wires=search.wires)
        for wire in search.wires:
            assert state.level_populations(wire)[2] < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            GroverSearch(1, 0)
        with pytest.raises(ValueError):
            GroverSearch(3, 8)
        with pytest.raises(DecompositionError):
            GroverSearch(3, 0, construction="bogus")

    def test_circuit_uses_no_extra_wires(self):
        search = GroverSearch(4, 5)
        circuit = search.build_circuit(1)
        assert set(circuit.all_qudits()) == set(search.wires)
