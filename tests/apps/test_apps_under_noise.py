"""Applications under noise: the circuits stay useful, not just correct.

The paper's motivation for each application is that the qutrit
construction makes it *feasible on noisy hardware*; these tests run each
application through the trajectory simulator and assert it still does its
job under light near-term noise.
"""

import numpy as np

from repro.apps.grover import GroverSearch
from repro.apps.incrementer import qutrit_incrementer_circuit
from repro.apps.neuron import QuantumNeuron
from repro.noise.presets import DRESSED_QUTRIT, SC_T1_GATES
from repro.sim.measurement import sample_state
from repro.sim.state import StateVector
from repro.sim.trajectory import TrajectorySimulator


class TestGroverUnderNoise:
    def test_noisy_grover_keeps_high_fidelity(self):
        # Fidelity against the ideal search output is exactly the
        # probability the noisy run behaves like the noiseless one, and
        # the noiseless one finds the marked item with P ~ 0.95.
        search = GroverSearch(3, marked=6)
        circuit = search.build_circuit()
        sim = TrajectorySimulator(
            DRESSED_QUTRIT, np.random.default_rng(1)
        )
        fidelities = [
            sim.run_trajectory(
                circuit, StateVector.zero(search.wires)
            ).fidelity
            for _ in range(25)
        ]
        assert np.mean(fidelities) > 0.85

    def test_ideal_grover_sampling_peaks_on_marked_item(self):
        search = GroverSearch(3, marked=6)
        state = StateVector.zero(search.wires)
        for op in search.build_circuit().all_operations():
            state.apply_operation(op)
        samples = sample_state(
            state, shots=200, rng=np.random.default_rng(2)
        )
        (top_outcome, count), = samples.most_common(1)
        assert top_outcome == (1, 1, 0)  # 6 = 0b110
        assert count / 200 > 0.8


class TestIncrementerUnderNoise:
    def test_noisy_increment_mostly_lands_on_successor(self):
        width = 4
        circuit, register = qutrit_incrementer_circuit(width)
        sim = TrajectorySimulator(
            SC_T1_GATES, np.random.default_rng(3)
        )
        start = 5
        bits = [(start >> i) & 1 for i in range(width)]
        fidelities = []
        for _ in range(20):
            initial = StateVector.computational_basis(register, bits)
            fidelities.append(
                sim.run_trajectory(circuit, initial).fidelity
            )
        # Under the best SC model the paper projects, a width-4 increment
        # succeeds nearly always.
        assert np.mean(fidelities) > 0.9


class TestNeuronUnderNoise:
    def test_noisy_neuron_activation_close_to_ideal(self):
        weights = [1, -1, 1, 1]
        neuron = QuantumNeuron(2, weights)
        circuit = neuron.build_circuit(weights)
        sim = TrajectorySimulator(
            DRESSED_QUTRIT, np.random.default_rng(4)
        )
        wires = neuron.register + [neuron.output]
        fidelities = [
            sim.run_trajectory(
                circuit, StateVector.zero(wires)
            ).fidelity
            for _ in range(20)
        ]
        assert np.mean(fidelities) > 0.9
