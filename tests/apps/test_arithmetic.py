"""Tests for constant addition built from incrementers (Sec. 5.4)."""

import pytest

from repro.apps.arithmetic import add_constant_ops, controlled_add_constant_ops
from repro.circuits.circuit import Circuit
from repro.qudits import Qudit, qutrits


def _as_int(bits):
    return sum(b << i for i, b in enumerate(bits))


def _as_bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestAddConstant:
    @pytest.mark.parametrize("constant", [0, 1, 2, 3, 5, 7, 12, 15])
    def test_all_constants_width_4(self, constant, classical_sim):
        width = 4
        register = qutrits(width)
        circuit = Circuit(
            add_constant_ops(register, constant, decompose=False)
        )
        for value in range(1 << width):
            out = classical_sim.run_values(
                circuit, register, _as_bits(value, width)
            )
            assert _as_int(out) == (value + constant) % (1 << width)

    def test_constant_reduced_mod_2n(self, classical_sim):
        width = 3
        register = qutrits(width)
        circuit = Circuit(
            add_constant_ops(register, 8 + 3, decompose=False)
        )
        out = classical_sim.run_values(circuit, register, _as_bits(1, width))
        assert _as_int(out) == 4

    def test_zero_constant_is_empty(self):
        assert add_constant_ops(qutrits(4), 0) == []

    def test_addition_composes(self, classical_sim):
        width = 5
        register = qutrits(width)
        circuit = Circuit(add_constant_ops(register, 6, decompose=False))
        circuit.append(add_constant_ops(register, 11, decompose=False))
        out = classical_sim.run_values(
            circuit, register, _as_bits(9, width)
        )
        assert _as_int(out) == (9 + 6 + 11) % (1 << width)


class TestControlledAddConstant:
    @pytest.mark.parametrize("control_value", [1, 2])
    def test_fires_only_when_control_matches(
        self, control_value, classical_sim
    ):
        width = 3
        constant = 5
        register = qutrits(width)
        control = Qudit(width, 3)
        circuit = Circuit(
            controlled_add_constant_ops(
                register, constant, control, control_value, decompose=False
            )
        )
        wires = register + [control]
        for value in range(1 << width):
            for state in range(3):
                out = classical_sim.run_values(
                    circuit, wires, _as_bits(value, width) + [state]
                )
                expected = (
                    (value + constant) % (1 << width)
                    if state == control_value
                    else value
                )
                assert _as_int(out[:width]) == expected
                assert out[width] == state
