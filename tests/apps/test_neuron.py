"""Tests for the artificial quantum neuron (Sec. 5.1)."""

from itertools import product

import numpy as np
import pytest

from repro.apps.neuron import QuantumNeuron
from repro.exceptions import DecompositionError


class TestActivation:
    def test_matching_input_fully_activates(self):
        weights = [1, -1, -1, 1]
        neuron = QuantumNeuron(2, weights)
        assert np.isclose(
            neuron.activation_probability(weights), 1.0, atol=1e-7
        )

    def test_orthogonal_input_never_activates(self):
        weights = [1, 1, 1, 1]
        inputs = [1, -1, 1, -1]  # dot = 0
        neuron = QuantumNeuron(2, weights)
        assert np.isclose(
            neuron.activation_probability(inputs), 0.0, atol=1e-9
        )

    def test_matches_classical_for_all_two_bit_patterns(self):
        weights = [1, -1, 1, 1]
        neuron = QuantumNeuron(2, weights)
        for signs in product([-1, 1], repeat=4):
            quantum = neuron.activation_probability(list(signs))
            classical = neuron.classical_activation(list(signs))
            assert np.isclose(quantum, classical, atol=1e-7)

    def test_three_bit_neuron_spot_checks(self):
        weights = [1, 1, -1, 1, -1, -1, 1, 1]
        neuron = QuantumNeuron(3, weights)
        for signs in (
            weights,
            [1] * 8,
            [1, -1, 1, -1, 1, -1, 1, -1],
        ):
            assert np.isclose(
                neuron.activation_probability(signs),
                neuron.classical_activation(signs),
                atol=1e-7,
            )

    def test_qubit_construction_agrees(self):
        weights = [1, -1, -1, 1]
        inputs = [1, 1, -1, 1]
        qutrit = QuantumNeuron(2, weights)
        qubit = QuantumNeuron(2, weights, construction="qubit_cascade")
        assert np.isclose(
            qutrit.activation_probability(inputs),
            qubit.activation_probability(inputs),
            atol=1e-6,
        )


class TestValidation:
    def test_weight_length_checked(self):
        with pytest.raises(ValueError):
            QuantumNeuron(2, [1, -1])

    def test_weight_values_checked(self):
        with pytest.raises(ValueError):
            QuantumNeuron(2, [1, 0, 1, 1])

    def test_input_length_checked(self):
        neuron = QuantumNeuron(2, [1, 1, 1, 1])
        with pytest.raises(ValueError):
            neuron.activation_probability([1, 1])

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            QuantumNeuron(1, [1, 1])

    def test_construction_validated(self):
        with pytest.raises(DecompositionError):
            QuantumNeuron(2, [1, 1, 1, 1], construction="bogus")

    def test_ancilla_free_on_qutrits(self):
        neuron = QuantumNeuron(2, [1, 1, 1, 1])
        circuit = neuron.build_circuit([1, 1, 1, 1])
        assert set(circuit.all_qudits()) <= set(
            neuron.register + [neuron.output]
        )
