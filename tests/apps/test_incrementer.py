"""Tests for the qutrit incrementer (Sec. 5.3, Figure 7)."""


import pytest

from repro.apps.incrementer import (
    conditional_increment_ops,
    qubit_ripple_incrementer_ops,
    qutrit_incrementer_circuit,
    qutrit_incrementer_ops,
)
from repro.circuits.circuit import Circuit
from repro.exceptions import DecompositionError
from repro.qudits import Qudit, qubits, qutrits


def _as_int(bits):
    return sum(b << i for i, b in enumerate(bits))


def _as_bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


class TestQutritIncrementer:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_plus_one_mod_2n_exhaustive(self, width, classical_sim):
        circuit, register = qutrit_incrementer_circuit(
            width, decompose=False
        )
        for value in range(1 << width):
            out = classical_sim.run_values(
                circuit, register, _as_bits(value, width)
            )
            assert all(b <= 1 for b in out), "output left the qubit space"
            assert _as_int(out) == (value + 1) % (1 << width)

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_decomposed_matches(self, width, state_sim):
        circuit, register = qutrit_incrementer_circuit(width)
        for value in range(1 << width):
            state = state_sim.run_basis(
                circuit, register, _as_bits(value, width)
            )
            expected = _as_bits((value + 1) % (1 << width), width)
            assert state.probability_of(expected) == pytest.approx(
                1.0, abs=1e-7
            )

    def test_repeated_increments_wrap(self, classical_sim):
        width = 4
        circuit, register = qutrit_incrementer_circuit(
            width, decompose=False
        )
        value = [0] * width
        for step in range(1, (1 << width) + 1):
            value = list(
                classical_sim.run_values(circuit, register, value)
            )
            assert _as_int(value) == step % (1 << width)

    def test_requires_qutrit_wires(self):
        with pytest.raises(DecompositionError):
            qutrit_incrementer_ops(qubits(3))

    def test_empty_register(self):
        assert qutrit_incrementer_ops([]) == []

    def test_log_squared_depth_scaling(self):
        # Depth at width 2^k is a quadratic polynomial in k — i.e.
        # Theta(log^2 N), the paper's claim.  A quadratic in k has constant
        # second differences; linear depth would grow them geometrically.
        depths = [
            qutrit_incrementer_circuit(1 << k)[0].depth for k in range(3, 9)
        ]
        first_diffs = [b - a for a, b in zip(depths, depths[1:])]
        second_diffs = [b - a for a, b in zip(first_diffs, first_diffs[1:])]
        assert len(set(second_diffs)) == 1
        assert second_diffs[0] > 0

    def test_no_ancilla(self):
        circuit, register = qutrit_incrementer_circuit(16)
        assert set(circuit.all_qudits()) == set(register)


class TestConditionalIncrement:
    @pytest.mark.parametrize("carry_value", [1, 2])
    def test_fires_only_on_carry(self, carry_value, classical_sim):
        width = 3
        register = qutrits(width)
        carry = Qudit(width, 3)
        circuit = Circuit(
            conditional_increment_ops(
                register, carry, carry_value, decompose=False
            )
        )
        wires = register + [carry]
        for value in range(1 << width):
            for carry_state in range(3):
                values = _as_bits(value, width) + [carry_state]
                out = classical_sim.run_values(circuit, wires, values)
                expected_value = (
                    (value + 1) % (1 << width)
                    if carry_state == carry_value
                    else value
                )
                assert _as_int(out[:width]) == expected_value
                assert out[width] == carry_state, "carry wire modified"

    def test_empty_register_is_noop(self):
        carry = Qudit(0, 3)
        assert conditional_increment_ops([], carry) == []


class TestQubitRippleBaseline:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 5, 6])
    def test_plus_one_exhaustive(self, width, state_sim):
        register = qubits(width)
        circuit = Circuit(qubit_ripple_incrementer_ops(register))
        for value in range(1 << width):
            state = state_sim.run_basis(
                circuit, register, _as_bits(value, width)
            )
            expected = _as_bits((value + 1) % (1 << width), width)
            assert state.probability_of(expected) == pytest.approx(
                1.0, abs=1e-7
            )

    def test_depth_grows_faster_than_qutrit_version(self):
        width = 16
        qubit_depth = Circuit(
            qubit_ripple_incrementer_ops(qubits(width))
        ).depth
        qutrit_depth = qutrit_incrementer_circuit(width)[0].depth
        assert qubit_depth > 3 * qutrit_depth
