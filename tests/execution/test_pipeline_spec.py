"""Declarative PipelineSpec: registry parity, serialization, resolution."""

import json

import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import SerializationError
from repro.execution import PipelineSpec, PipelineStage, execute
from repro.execution.facade import NAMED_PIPELINES, resolve_pipeline
from repro.execution.pipeline import CompilePipeline
from repro.execution.pipeline_spec import PIPELINE_SPECS, STAGE_KINDS
from repro.gates.qubit import CNOT, H
from repro.qudits import qubits


def _bell_pair():
    a, b = qubits(2)
    return Circuit([H.on(a), CNOT.on(a, b)])


class TestStage:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown stage kind"):
            PipelineStage("transpile")

    def test_bad_params_rejected_at_build(self):
        stage = PipelineStage("lift", {"levels": 3})
        with pytest.raises(ValueError, match="bad parameters"):
            stage.build()

    def test_params_are_canonically_ordered(self):
        left = PipelineStage("route", {"topology": "line", "router": "greedy"})
        right = PipelineStage("route", {"router": "greedy", "topology": "line"})
        assert left == right
        assert hash(left) == hash(right)

    def test_bad_enum_params_rejected(self):
        with pytest.raises(ValueError, match="width2"):
            PipelineStage("decompose", {"basis": "clifford"}).build()
        with pytest.raises(ValueError, match="merge"):
            PipelineStage("schedule", {"mode": "alap"}).build()


class TestRegistryParity:
    @pytest.mark.parametrize("name", sorted(NAMED_PIPELINES))
    def test_spec_matches_legacy_factory(self, name):
        spec_pipeline = PipelineSpec.from_name(name).build()
        legacy_pipeline = NAMED_PIPELINES[name]()
        assert spec_pipeline.pass_names == legacy_pipeline.pass_names

    def test_interop_strategies_registered(self):
        naive = PipelineSpec.from_name("naive-lift")
        ternary = PipelineSpec.from_name("temporary-ternary")
        assert [s.kind for s in naive.stages] == ["decompose", "lift"]
        assert [s.kind for s in ternary.stages] == ["lift", "decompose"]

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="lowering"):
            PipelineSpec.from_name("annealing")

    def test_every_registered_spec_builds(self):
        for name, spec in PIPELINE_SPECS.items():
            pipeline = spec.build()
            assert isinstance(pipeline, CompilePipeline)
            assert pipeline.name == name

    def test_cli_choices_cover_registry(self):
        from repro.__main__ import PIPELINE_CHOICES

        assert set(PIPELINE_CHOICES) == set(PIPELINE_SPECS)

    def test_bench_suite_choices_cover_registry(self):
        from repro.__main__ import BENCH_SUITE_CHOICES
        from repro.analysis.bench import BENCH_SUITES

        assert set(BENCH_SUITE_CHOICES) == set(BENCH_SUITES) | {"all"}


class TestSerialization:
    def _sample(self):
        return PipelineSpec(
            "custom",
            (
                PipelineStage("lift", {"dim": 3}),
                PipelineStage("optimize", {"label": "mid"}),
                PipelineStage("lower", {"verify": True}),
            ),
        )

    def test_json_round_trip(self):
        spec = self._sample()
        assert PipelineSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("name", sorted(PIPELINE_SPECS))
    def test_registry_round_trips(self, name):
        spec = PIPELINE_SPECS[name]
        rebuilt = PipelineSpec.from_json(spec.to_json(indent=2))
        assert rebuilt == spec
        assert hash(rebuilt) == hash(spec)

    def test_invalid_json_raises_typed_error(self):
        with pytest.raises(SerializationError, match="invalid"):
            PipelineSpec.from_json("{not json")

    def test_missing_name_rejected(self):
        with pytest.raises(SerializationError, match="name"):
            PipelineSpec.from_dict({"stages": []})

    def test_malformed_stage_rejected(self):
        with pytest.raises(SerializationError):
            PipelineSpec.from_dict(
                {"name": "x", "stages": [{"params": {}}]}
            )
        with pytest.raises(SerializationError):
            PipelineSpec.from_dict({"name": "x", "stages": "lift"})

    def test_unknown_kind_surfaces_as_serialization_error(self):
        with pytest.raises(SerializationError, match="unknown stage"):
            PipelineSpec.from_dict(
                {"name": "x", "stages": [{"kind": "warp"}]}
            )

    def test_to_json_is_stable(self):
        spec = self._sample()
        assert json.loads(spec.to_json()) == spec.to_dict()


class TestDescribeAndWith:
    def test_describe_lists_stages(self):
        text = PIPELINE_SPECS["temporary-ternary"].describe()
        assert "temporary-ternary" in text
        assert "1. lift" in text
        assert "basis=width2" in text

    def test_with_stage_appends(self):
        base = PipelineSpec("base")
        extended = base.with_stage("optimize", label="tail")
        assert len(base.stages) == 0
        assert [s.kind for s in extended.stages] == ["optimize"]

    def test_stage_kinds_is_closed_vocabulary(self):
        assert STAGE_KINDS == (
            "lift", "decompose", "optimize", "route", "lower", "schedule"
        )


class TestResolvePipeline:
    def test_none_and_pipeline_pass_through(self):
        assert resolve_pipeline(None) is None
        pipeline = CompilePipeline([], name="empty")
        assert resolve_pipeline(pipeline) is pipeline

    def test_spec_resolves_without_warning(self, recwarn):
        pipeline = resolve_pipeline(PIPELINE_SPECS["lowering"])
        assert pipeline.pass_names == (
            NAMED_PIPELINES["lowering"]().pass_names
        )
        assert not [
            w for w in recwarn if w.category is DeprecationWarning
        ]

    def test_string_warns_and_keeps_legacy_pipeline(self):
        with pytest.warns(DeprecationWarning, match="from_name"):
            pipeline = resolve_pipeline("hardware-grid-opt")
        assert pipeline.pass_names == (
            NAMED_PIPELINES["hardware-grid-opt"]().pass_names
        )

    def test_spec_only_string_still_resolves(self):
        with pytest.warns(DeprecationWarning):
            pipeline = resolve_pipeline("temporary-ternary")
        assert pipeline.name == "temporary-ternary"

    def test_unknown_string_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown pipeline"):
            resolve_pipeline("annealing")

    def test_other_types_raise_type_error(self):
        with pytest.raises(TypeError, match="cannot resolve"):
            resolve_pipeline(42)


class TestExecuteIntegration:
    def test_execute_accepts_spec(self):
        result = execute(
            _bell_pair(),
            backend="statevector",
            pipeline=PIPELINE_SPECS["lowering"],
        )
        assert result.metadata["pipeline"] == "lowering"
        assert abs(
            result.probability_of((0, 0)) + result.probability_of((1, 1))
            - 1.0
        ) < 1e-9

    def test_execute_accepts_interop_spec(self):
        result = execute(
            _bell_pair(),
            backend="statevector",
            pipeline=PipelineSpec.from_name("temporary-ternary"),
        )
        assert result.metadata["pipeline"] == "temporary-ternary"

    def test_execute_string_shim_still_works(self):
        with pytest.warns(DeprecationWarning):
            result = execute(
                _bell_pair(),
                backend="statevector",
                pipeline="lowering",
            )
        assert result.metadata["pipeline"] == "lowering"
