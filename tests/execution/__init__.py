"""Tests for the unified execution layer."""
