"""Optimizer integration with the execution layer.

Covers the OptimizePass compile stage, the ``*-opt`` named pipelines,
the ``execute(optimize=...)`` knob, and the cache-identity contract:
an optimized run is keyed on the *optimized* circuit's fingerprint.
"""

import numpy as np

from repro.execution import execute
from repro.execution.cache import ResultCache, circuit_fingerprint
from repro.execution.facade import NAMED_PIPELINES, resolve_pipeline
from repro.execution.passes import OptimizePass
from repro.execution.pipeline import hardware_pipeline, optimize_pipeline
from repro.optimize import RewriteEngine
from repro.toffoli.registry import construction_circuit


class TestOptimizePass:
    def test_transform_reduces_and_records_metadata(self):
        circuit = construction_circuit("he_tree", 3)
        stage = OptimizePass()
        optimized = stage.transform(circuit)
        assert optimized.num_operations < circuit.num_operations
        meta = stage.last_metadata
        assert meta["gates_before"] == circuit.num_operations
        assert meta["gates_after"] == optimized.num_operations
        assert meta["passes"] == [
            "cancel-inverses", "fuse-phases", "pack-commuting",
        ]
        assert stage.name == "Optimize[optimize]"

    def test_custom_engine_and_label(self):
        engine = RewriteEngine(passes=["fuse-phases"])
        stage = OptimizePass(engine=engine, label="pre-route")
        assert stage.engine is engine
        assert stage.name == "Optimize[pre-route]"


class TestPipelines:
    def test_optimize_pipeline_is_a_single_stage(self):
        pipeline = optimize_pipeline()
        assert pipeline.name == "optimize"
        assert pipeline.pass_names == ("Optimize[optimize]",)

    def test_hardware_opt_brackets_the_router(self):
        pipeline = hardware_pipeline("line", optimize=True)
        assert pipeline.name == "hardware-opt"
        names = pipeline.pass_names
        assert names[1] == "Optimize[pre-route]"
        assert names[3] == "Optimize[post-route]"

    def test_named_opt_pipelines_resolve(self):
        for name in (
            "optimize",
            "hardware-line-opt",
            "hardware-grid-opt",
            "hardware-heavy-hex-opt",
        ):
            assert name in NAMED_PIPELINES
            assert resolve_pipeline(name) is not None

    def test_hardware_opt_compiles_equivalently(self):
        circuit = construction_circuit("he_tree", 3)
        plain = resolve_pipeline("hardware-line").compile(circuit)
        opt = resolve_pipeline("hardware-line-opt").compile(circuit)
        assert opt.num_operations <= plain.num_operations


class TestExecuteOptimizeKnob:
    def test_optimized_run_matches_plain_run(self):
        plain = execute("he_tree", num_controls=3)
        optimized = execute("he_tree", num_controls=3, optimize=True)
        assert np.allclose(
            plain.state.tensor, optimized.state.tensor, atol=1e-8
        )

    def test_metadata_records_the_reduction(self):
        result = execute("he_tree", num_controls=3, optimize=True)
        assert result.metadata["optimize_gates_removed"] > 0
        assert result.metadata["optimize_passes"] == (
            "cancel-inverses", "fuse-phases", "pack-commuting",
        )

    def test_pass_list_string_accepted(self):
        result = execute(
            "he_tree", num_controls=3, optimize="cancel-inverses"
        )
        assert result.metadata["optimize_passes"] == ("cancel-inverses",)

    def test_cache_keys_on_the_optimized_form(self):
        # Two ways to arrive at the same optimized circuit must share a
        # cache line; the unoptimized run must not.
        cache = ResultCache()
        circuit = construction_circuit("he_tree", 3)
        optimized_circuit, _ = RewriteEngine().run(circuit)
        execute(circuit, optimize=True, cache=cache)
        assert len(cache) == 1
        key = next(iter(cache._entries))
        assert key[0] == circuit_fingerprint(optimized_circuit)
        assert key[0] != circuit_fingerprint(circuit)
        # Re-running hits the same line (no new entries).
        execute(circuit, optimize=True, cache=cache)
        assert len(cache) == 1
        # The unoptimized run gets its own line.
        execute(circuit, cache=cache)
        assert len(cache) == 2
