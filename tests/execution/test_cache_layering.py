"""ResultCache concurrency hammer + the persistent-backing layering."""

import threading

import pytest

from repro.execution import CacheBacking, ResultCache, execute
from repro.execution.cache import cache_key_digest, cache_key_encoding
from repro.qudits import Qudit


class DictBacking:
    """Minimal in-memory CacheBacking for layering tests."""

    def __init__(self):
        self.entries = {}
        self.puts = 0

    def get(self, key):
        return self.entries.get(key)

    def put(self, key, result):
        self.entries[key] = result
        self.puts += 1
        return True


class TestThreadSafety:
    def test_concurrent_hammer_keeps_invariants(self):
        """8 threads × 500 mixed put/get ops on a 32-entry LRU: no
        exceptions, size stays bounded, counters stay consistent."""
        cache = ResultCache(max_entries=32)
        threads = 8
        ops = 500
        errors = []
        barrier = threading.Barrier(threads)

        def hammer(worker):
            try:
                barrier.wait(timeout=10)
                for index in range(ops):
                    key = ("k", (worker * index) % 100)
                    if index % 3 == 0:
                        cache.put(key, f"value-{worker}-{index}")
                    else:
                        cache.get(key)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        pool = [threading.Thread(target=hammer, args=(w,))
                for w in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60)
        assert errors == []
        assert len(cache) <= 32
        gets = threads * ops - threads * ((ops + 2) // 3)
        assert cache.stats.lookups == gets
        assert cache.stats.hits + cache.stats.misses == gets

    def test_concurrent_put_single_key_last_write_wins(self):
        cache = ResultCache(max_entries=4)
        barrier = threading.Barrier(16)

        def put(value):
            barrier.wait(timeout=10)
            cache.put("shared", value)

        pool = [threading.Thread(target=put, args=(v,))
                for v in range(16)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
        assert len(cache) == 1
        assert cache.get("shared") in range(16)


class TestBackingLayer:
    def test_miss_falls_through_and_promotes(self):
        backing = DictBacking()
        backing.entries["key"] = "stored"
        cache = ResultCache(backing=backing)
        result, source = cache.get_with_source("key")
        assert (result, source) == ("stored", "backing")
        assert cache.stats.backing_hits == 1
        # Promoted: the second lookup is a pure memory hit.
        result, source = cache.get_with_source("key")
        assert (result, source) == ("stored", "memory")
        assert cache.stats.hits == 1

    def test_put_writes_through(self):
        backing = DictBacking()
        cache = ResultCache(backing=backing)
        cache.put("key", "fresh")
        assert backing.entries["key"] == "fresh"
        assert backing.puts == 1

    def test_clear_keeps_backing(self):
        backing = DictBacking()
        cache = ResultCache(backing=backing)
        cache.put("key", "fresh")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("key") == "fresh"  # restored from backing

    def test_eviction_does_not_touch_backing(self):
        backing = DictBacking()
        cache = ResultCache(max_entries=2, backing=backing)
        for index in range(5):
            cache.put(index, f"v{index}")
        assert len(cache) == 2
        assert len(backing.entries) == 5

    def test_miss_with_empty_backing(self):
        cache = ResultCache(backing=DictBacking())
        assert cache.get_with_source("nope") == (None, None)
        assert cache.stats.misses == 1

    def test_hit_rate_counts_both_levels(self):
        backing = DictBacking()
        backing.entries["key"] = "stored"
        cache = ResultCache(backing=backing)
        cache.get("key")      # backing hit
        cache.get("key")      # memory hit
        cache.get("absent")   # miss
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_protocol_runtime_check(self):
        assert isinstance(DictBacking(), CacheBacking)


class TestKeyEncoding:
    def test_qudits_encode_structurally(self):
        key = (("fp", Qudit(0, 3)), None, 5)
        text = cache_key_encoding(key)
        assert '"qudit"' in text and "3" in text
        assert cache_key_encoding(key) == text  # deterministic

    def test_distinct_keys_get_distinct_digests(self):
        a = ("fp", (Qudit(0, 2),), 1)
        b = ("fp", (Qudit(0, 3),), 1)
        assert cache_key_digest(a) != cache_key_digest(b)

    def test_digest_stable_across_calls(self):
        key = ("fp", None, True, 2.5)
        assert cache_key_digest(key) == cache_key_digest(key)


class FlakyBacking(DictBacking):
    """A backing layer whose every call raises."""

    def get(self, key):
        raise OSError("backing disk is gone")

    def put(self, key, result):
        raise OSError("backing disk is gone")


class TestFlakyBacking:
    def test_broken_backing_never_breaks_the_front_cache(self):
        cache = ResultCache(backing=FlakyBacking())
        result = execute(
            "qutrit_tree", num_controls=3, backend="classical",
            initial=(1, 1, 1, 0), cache=cache,
        )
        assert result.values == (1, 1, 1, 1)
        assert cache.stats.backing_errors >= 2  # one get, one put
        # The in-memory entry survived the failed write-through.
        again = execute(
            "qutrit_tree", num_controls=3, backend="classical",
            initial=(1, 1, 1, 0), cache=cache,
        )
        assert again.values == (1, 1, 1, 1)
        assert cache.stats.hits == 1
