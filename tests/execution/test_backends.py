"""Backend protocol conformance and cross-backend parity.

The headline guarantees: every registered backend satisfies the
``Backend`` protocol, all backends agree on small classical circuits,
and the trajectory backend's sampled mean matches the exact
density-matrix reference within statistical uncertainty.
"""

from __future__ import annotations

from itertools import product

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import SimulationError
from repro.execution import (
    Backend,
    available_backends,
    execute,
    resolve_backend,
)
from repro.gates.controlled import ControlledGate
from repro.gates.qutrit import X01, X_PLUS_1
from repro.noise.model import NoiseModel
from repro.qudits import qutrits, total_dimension
from repro.sim.state import StateVector
from repro.toffoli.registry import CONSTRUCTIONS, build_toffoli

NOISELESS = NoiseModel("clean", 0.0, 0.0, 1e-7, 3e-7, t1=None)
DEPOL = NoiseModel("depol", 2e-3, 1e-3, 1e-7, 3e-7, t1=None)


def _permutation_circuit():
    """A 3-qutrit classical circuit every backend can execute."""
    a, b, c = qutrits(3)
    circuit = Circuit(
        [
            X01.on(a),
            ControlledGate(X_PLUS_1, (3,), (1,)).on(a, b),
            ControlledGate(X01, (3,), (2,)).on(b, c),
            X_PLUS_1.on(b),
        ]
    )
    return circuit, [a, b, c]


class TestRegistry:
    def test_four_backends_registered(self):
        assert {"classical", "statevector", "density", "trajectory"} <= set(
            available_backends()
        )

    def test_all_registered_backends_satisfy_protocol(self):
        for name in available_backends():
            backend = resolve_backend(name, noise_model=NOISELESS)
            assert isinstance(backend, Backend)
            assert backend.name == name
            assert backend.capabilities.kind

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            resolve_backend("qpu")

    def test_noisy_backend_needs_model(self):
        with pytest.raises(ValueError, match="noise model"):
            resolve_backend("trajectory")


class TestBackendParity:
    """All backends agree on classical circuits (satellite requirement)."""

    @pytest.mark.parametrize(
        "values", list(product([0, 1], repeat=3))
    )
    def test_classical_statevector_density_agree(self, values):
        circuit, wires = _permutation_circuit()
        classical = execute(
            circuit, backend="classical", wires=wires, initial=values
        )
        statevector = execute(
            circuit, backend="statevector", wires=wires, initial=values
        )
        density = execute(
            circuit,
            backend="density",
            noise_model=NOISELESS,
            wires=wires,
            initial=values,
        )
        assert np.isclose(
            statevector.probability_of(classical.values), 1.0, atol=1e-9
        )
        assert np.isclose(
            density.probability_of(classical.values), 1.0, atol=1e-9
        )

    def test_trajectory_mean_within_ci_of_density(self):
        """Trajectory sampling converges to the exact reference (Sec 6.2)."""
        circuit, wires = _permutation_circuit()
        rng = np.random.default_rng(20190622)
        caps = {w: 2 for w in wires}
        exact = np.mean(
            [
                execute(
                    circuit,
                    backend="density",
                    noise_model=DEPOL,
                    wires=wires,
                    initial=StateVector.random(
                        wires, rng, levels_per_wire=caps
                    ),
                ).metadata["fidelity_vs_ideal"]
                for _ in range(12)
            ]
        )
        sampled = execute(
            circuit,
            backend="trajectory",
            noise_model=DEPOL,
            wires=wires,
            trials=400,
            seed=7,
        )
        tolerance = max(3 * sampled.std_error, 0.02)
        assert abs(sampled.mean_fidelity - exact) < tolerance

    def test_classical_backend_rejects_state_vector_input(self):
        circuit, wires = _permutation_circuit()
        with pytest.raises(SimulationError, match="basis values"):
            execute(
                circuit,
                backend="classical",
                wires=wires,
                initial=StateVector.zero(wires),
            )

    def test_trajectory_backend_rejects_initial(self):
        circuit, wires = _permutation_circuit()
        with pytest.raises(SimulationError, match="Algorithm 1"):
            execute(
                circuit,
                backend="trajectory",
                noise_model=DEPOL,
                wires=wires,
                initial=(0, 0, 0),
                trials=1,
            )


class TestAllConstructionsAllBackends:
    """Every Table 1 construction runs through execute() on 3+ backends."""

    @pytest.mark.parametrize("name", sorted(CONSTRUCTIONS))
    def test_statevector(self, name):
        built = build_toffoli(name, 3)
        values = [1, 1, 1, 0] + [0] * built.ancilla_count
        expected = list(values)
        expected[3] = 1  # all controls active -> target flips
        result = execute(
            built, backend="statevector", initial=values
        )
        assert np.isclose(
            result.probability_of(expected), 1.0, atol=1e-7
        )

    @pytest.mark.parametrize("name", sorted(CONSTRUCTIONS))
    def test_density(self, name):
        built = build_toffoli(name, 3)
        if total_dimension(built.all_wires) > 128:
            pytest.skip("density reference capped at 128 dimensions")
        values = [1, 1, 1, 0] + [0] * built.ancilla_count
        result = execute(
            built,
            backend="density",
            noise_model=NOISELESS,
            initial=values,
        )
        assert np.isclose(
            result.metadata["fidelity_vs_ideal"], 1.0, atol=1e-7
        )

    @pytest.mark.parametrize("name", sorted(CONSTRUCTIONS))
    def test_trajectory(self, name):
        result = execute(
            name,
            num_controls=3,
            backend="trajectory",
            noise_model=DEPOL,
            trials=4,
            seed=5,
        )
        assert result.trials == 4
        assert 0.0 <= result.mean_fidelity <= 1.0 + 1e-9
