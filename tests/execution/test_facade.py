"""Tests for execute(): targets, sweeps, parallel sharding, caching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.execution import (
    FidelityResult,
    ResultCache,
    execute,
    lowering_pipeline,
    resolve_pipeline,
)
from repro.gates.qubit import CNOT, H, X
from repro.noise.model import NoiseModel
from repro.qudits import qubits
from repro.toffoli.registry import build_toffoli

DEPOL = NoiseModel("depol", 2e-3, 1e-3, 1e-7, 3e-7, t1=None)


class TestTargets:
    def test_accepts_circuit(self):
        a, b = qubits(2)
        result = execute(Circuit([H.on(a), CNOT.on(a, b)]))
        assert result.backend == "statevector"
        assert np.isclose(
            result.probability_of((0, 0))
            + result.probability_of((1, 1)),
            1.0,
        )

    def test_accepts_construction_result(self):
        built = build_toffoli("qutrit_tree", 3)
        result = execute(built, initial=(1, 1, 1, 0))
        assert np.isclose(
            result.probability_of((1, 1, 1, 1)), 1.0, atol=1e-7
        )

    def test_accepts_registry_name_with_builder_kwargs(self):
        result = execute(
            "qutrit_tree",
            num_controls=4,
            backend="classical",
            initial=(1, 1, 1, 1, 0),
        )
        assert result.values == (1, 1, 1, 1, 1)

    def test_accepts_callable(self):
        def make(width: int) -> Circuit:
            wires = qubits(width)
            return Circuit([X.on(w) for w in wires])

        result = execute(
            make, width=3, backend="classical"
        )
        assert result.values == (1, 1, 1)

    def test_builder_kwargs_on_circuit_rejected(self):
        a = qubits(1)[0]
        with pytest.raises(TypeError, match="already a concrete circuit"):
            execute(Circuit([X.on(a)]), num_controls=3)

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(KeyError, match="unknown pipeline"):
            resolve_pipeline("optimize-harder")


class TestPipelineIntegration:
    def test_pipeline_metadata_attached(self):
        result = execute(
            "qutrit_tree",
            num_controls=4,
            pipeline=lowering_pipeline(),
            initial=(1, 1, 1, 1, 0),
            decompose=False,
        )
        assert result.metadata["pipeline"] == "lowering"
        assert result.metadata["compiled_depth"] > 0
        assert np.isclose(
            result.probability_of((1, 1, 1, 1, 1)), 1.0, atol=1e-7
        )

    def test_named_pipeline(self):
        result = execute(
            "qutrit_tree",
            num_controls=3,
            pipeline="lowering",
            decompose=False,
        )
        assert result.metadata["pipeline"] == "lowering"

    def test_named_hardware_pipelines_route_and_run(self):
        for name in ("hardware-line", "hardware-grid", "hardware-heavy-hex"):
            result = execute(
                "qutrit_tree",
                num_controls=3,
                pipeline=name,
            )
            assert result.metadata["pipeline"] == "hardware"
            assert any(
                pass_name.startswith("RouteToTopology")
                for pass_name in result.metadata["passes"]
            )


class TestSweeps:
    """The acceptance sweep: num_controls 3..7, parallel == serial."""

    @pytest.mark.slow
    def test_parallel_sweep_matches_serial_seeded(self):
        config = dict(
            backend="trajectory",
            noise_model=DEPOL,
            sweep={"num_controls": range(3, 8)},
            trials=8,
            seed=2019,
        )
        serial = execute("qutrit_tree", **config)
        parallel = execute(
            "qutrit_tree", parallel=True, workers=2, **config
        )
        repeat = execute(
            "qutrit_tree", parallel=True, workers=2, **config
        )
        assert len(serial) == len(parallel) == 5
        for serial_pt, parallel_pt, repeat_pt in zip(
            serial, parallel, repeat
        ):
            assert parallel_pt.params == serial_pt.params
            assert parallel_pt.trials == serial_pt.trials == 8
            assert isinstance(parallel_pt, FidelityResult)
            # Merged shards are deterministic given the seed...
            assert (
                parallel_pt.mean_fidelity == repeat_pt.mean_fidelity
            )
            # ...and agree with the serial estimator in distribution.
            spread = max(
                5 * (serial_pt.std_error + parallel_pt.std_error), 0.05
            )
            assert (
                abs(parallel_pt.mean_fidelity - serial_pt.mean_fidelity)
                <= spread
            )

    def test_statevector_sweep_parallel_identical(self):
        sweep = {"num_controls": [3, 4]}
        serial = execute("qutrit_tree", sweep=sweep, seed=2)
        parallel = execute(
            "qutrit_tree", sweep=sweep, seed=2, parallel=True, workers=2
        )
        for serial_pt, parallel_pt in zip(serial, parallel):
            assert np.allclose(
                serial_pt.state.vector, parallel_pt.state.vector
            )

    def test_sweep_points_tagged_and_ordered(self):
        results = execute(
            "qutrit_tree",
            backend="classical",
            sweep={"num_controls": [3, 4, 5]},
            initial=None,
        )
        assert [dict(r.params) for r in results] == [
            {"num_controls": 3},
            {"num_controls": 4},
            {"num_controls": 5},
        ]

    def test_sweep_run_params_override(self):
        results = execute(
            "qutrit_tree",
            num_controls=3,
            backend="trajectory",
            noise_model=DEPOL,
            sweep={"trials": [2, 4]},
            seed=3,
        )
        assert [r.trials for r in results] == [2, 4]


class TestCache:
    def test_cache_hit_returns_equal_result(self):
        cache = ResultCache()
        config = dict(
            num_controls=3,
            backend="trajectory",
            noise_model=DEPOL,
            trials=4,
            seed=9,
            cache=cache,
        )
        first = execute("qutrit_tree", **config)
        second = execute("qutrit_tree", **config)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert second.mean_fidelity == first.mean_fidelity

    def test_unseeded_stochastic_runs_not_cached(self):
        cache = ResultCache()
        for _ in range(2):
            execute(
                "qutrit_tree",
                num_controls=3,
                backend="trajectory",
                noise_model=DEPOL,
                trials=2,
                cache=cache,
            )
        assert len(cache) == 0

    def test_deterministic_runs_cached_without_seed(self):
        cache = ResultCache()
        for _ in range(2):
            execute(
                "qutrit_tree",
                num_controls=3,
                backend="classical",
                initial=(1, 1, 1, 0),
                cache=cache,
            )
        assert cache.stats.hits == 1

    def test_backend_instances_with_different_models_do_not_collide(self):
        from repro.execution import TrajectoryBackend

        heavy = NoiseModel("heavy", 5e-3, 5e-3, 1e-7, 3e-7, t1=None)
        cache = ResultCache()
        built = build_toffoli("qutrit_tree", 3)
        clean = execute(
            built, backend=TrajectoryBackend(DEPOL),
            trials=6, seed=4, cache=cache,
        )
        noisy = execute(
            built, backend=TrajectoryBackend(heavy),
            trials=6, seed=4, cache=cache,
        )
        assert cache.stats.hits == 0
        assert noisy.metadata["noise_model"] == "heavy"
        assert noisy.mean_fidelity < clean.mean_fidelity

    def test_sweep_initial_lists_cacheable(self):
        cache = ResultCache()
        for _ in range(2):
            results = execute(
                "qutrit_tree",
                num_controls=3,
                backend="classical",
                sweep={"initial": [[1, 1, 1, 0], [0, 1, 1, 0]]},
                cache=cache,
            )
        assert [r.values for r in results] == [
            (1, 1, 1, 1),
            (0, 1, 1, 0),
        ]
        assert cache.stats.hits == 2

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=1)
        for controls in (3, 4):
            execute(
                "qutrit_tree",
                num_controls=controls,
                backend="classical",
                initial=(1,) * controls + (0,),
                cache=cache,
            )
        assert len(cache) == 1
        assert cache.stats.evictions == 1


class TestTimeouts:
    """execute(timeout=...): the cooperative deadline (RESILIENCE.md)."""

    def test_generous_timeout_completes(self):
        result = execute(
            "qutrit_tree", num_controls=3, backend="classical",
            initial=(1, 1, 1, 0), timeout=300,
        )
        assert result.values == (1, 1, 1, 1)

    def test_expired_deadline_raises_typed_error(self):
        from repro.resilience import Deadline, JobTimeoutError

        with pytest.raises(JobTimeoutError):
            execute(
                "qutrit_tree", num_controls=3, backend="classical",
                initial=(1, 1, 1, 0),
                timeout=Deadline(0.0),  # already expired
            )

    def test_expired_deadline_checked_between_sweep_tasks(self):
        from repro.resilience import Deadline, JobTimeoutError

        clock = {"now": 0.0}

        # Each clock read advances time: the first sweep point fits
        # the budget, the next between-task checkpoint does not.
        def advancing_clock():
            clock["now"] += 0.6
            return clock["now"]

        deadline = Deadline(1.0, clock=advancing_clock)
        with pytest.raises(JobTimeoutError, match="execute"):
            execute(
                "qutrit_tree", backend="classical", initial=None,
                sweep={"num_controls": [3, 4, 5]}, timeout=deadline,
            )

    def test_parallel_pool_honours_deadline(self):
        from repro.resilience import Deadline, JobTimeoutError

        with pytest.raises(JobTimeoutError, match="shards"):
            execute(
                "qutrit_tree", sweep={"num_controls": [3, 4]}, seed=2,
                parallel=True, workers=2, timeout=Deadline(0.0),
            )

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            execute(
                "qutrit_tree", num_controls=3, backend="classical",
                initial=(1, 1, 1, 0), timeout=-1,
            )
