"""Tests for the compile passes and pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.topology import line
from repro.circuits.circuit import Circuit
from repro.exceptions import DecompositionError
from repro.execution import (
    ASAPReschedule,
    CompilePipeline,
    DecomposeToWidth2,
    MergeMoments,
    PromoteQubitsToQutrits,
    RouteToTopology,
    circuit_fingerprint,
    execute,
    lowering_pipeline,
    promote_gate,
    qutrit_promotion_pipeline,
    transform_operations,
)
from repro.gates.base import PermutationGate
from repro.gates.qubit import CNOT, H, X
from repro.gates.qutrit import X01
from repro.linalg import allclose_up_to_global_phase
from repro.qudits import qubits, qutrits
from repro.toffoli.registry import build_toffoli


class TestDecomposeToWidth2:
    def test_matches_inline_decomposition(self):
        plain = build_toffoli("qutrit_tree", 5, decompose=False).circuit
        inline = build_toffoli("qutrit_tree", 5).circuit
        lowered = DecomposeToWidth2().transform(plain)
        assert lowered.max_gate_width() == 2
        assert circuit_fingerprint(lowered) == circuit_fingerprint(inline)

    def test_reports_operation_counts(self):
        plain = build_toffoli("qutrit_tree", 4, decompose=False).circuit
        compile_pass = DecomposeToWidth2()
        lowered = compile_pass.transform(plain)
        assert compile_pass.last_metadata["ops_before"] == plain.num_operations
        assert (
            compile_pass.last_metadata["ops_after"]
            == lowered.num_operations
        )


class TestPromoteQubitsToQutrits:
    def test_wires_and_semantics_promoted(self):
        a, b = qubits(2)
        bell = Circuit([H.on(a), CNOT.on(a, b)])
        promoted = PromoteQubitsToQutrits().transform(bell)
        new_wires = promoted.all_qudits()
        assert all(w.dimension == 3 for w in new_wires)
        original = execute(bell, backend="statevector")
        lifted = execute(promoted, backend="statevector")
        # Same Bell statistics on the binary subspace.
        for outcome in [(0, 0), (1, 1)]:
            assert np.isclose(
                lifted.probability_of(outcome),
                original.probability_of(outcome),
                atol=1e-9,
            )
        assert np.isclose(lifted.probability_of((2, 2)), 0.0, atol=1e-12)

    def test_classical_gates_stay_classical(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])
        promoted = PromoteQubitsToQutrits().transform(circuit)
        result = execute(promoted, backend="classical")
        assert result.values == (1, 1)

    def test_promote_gate_keeps_permutations(self):
        lifted = promote_gate(CNOT, (3, 3))
        assert isinstance(lifted, PermutationGate)
        assert lifted.classical_action((1, 0)) == (1, 1)
        assert lifted.classical_action((2, 1)) == (2, 1)  # |2> untouched

    def test_promote_single_qubit_embeds(self):
        lifted = promote_gate(X, (3,))
        assert allclose_up_to_global_phase(
            lifted.unitary(), X01.unitary()
        )

    def test_mixed_dimension_circuits_promote_only_qubits(self):
        a = qubits(1)[0]
        t = qutrits(1, start=5)[0]
        circuit = Circuit([X.on(a), X01.on(t)])
        promoted = PromoteQubitsToQutrits().transform(circuit)
        assert {w.dimension for w in promoted.all_qudits()} == {3}

    def test_index_collision_rejected(self):
        a = qubits(1)[0]  # index 0, d=2
        t = qutrits(1)[0]  # index 0, d=3 — promotion would collide
        circuit = Circuit([X.on(a), X01.on(t)])
        with pytest.raises(DecompositionError, match="already exists"):
            PromoteQubitsToQutrits().transform(circuit)


class TestRouteToTopology:
    def test_routed_gates_respect_line_adjacency(self):
        built = build_toffoli("qutrit_tree", 4)
        route = RouteToTopology(line)
        routed = route.transform(built.circuit)
        topology = line(len(built.circuit.all_qudits()))
        sites = {w.index for w in routed.all_qudits()}
        assert sites <= set(range(topology.size))
        for op in routed.all_operations():
            if op.num_qudits == 2:
                assert topology.are_adjacent(
                    op.qudits[0].index, op.qudits[1].index
                )
        assert route.last_metadata["swap_count"] > 0

    def test_all_to_all_needs_no_swaps(self):
        from repro.arch.topology import all_to_all

        built = build_toffoli("qutrit_tree", 3)
        route = RouteToTopology(all_to_all)
        routed = route.transform(built.circuit)
        assert route.last_metadata["swap_count"] == 0
        assert routed.num_operations == built.circuit.num_operations

    def test_defaults_to_lookahead_router(self):
        route = RouteToTopology(line)
        assert route.name == "RouteToTopology[lookahead]"
        built = build_toffoli("qutrit_tree", 4)
        route.transform(built.circuit)
        assert route.last_metadata["router"] == "lookahead"

    def test_greedy_router_selectable(self):
        built = build_toffoli("qutrit_tree", 4)
        greedy = RouteToTopology(line, router="greedy")
        assert greedy.name == "RouteToTopology[greedy]"
        greedy.transform(built.circuit)
        smart = RouteToTopology(line)
        smart.transform(built.circuit)
        assert (
            smart.last_metadata["swap_count"]
            <= greedy.last_metadata["swap_count"]
        )

    def test_topology_by_zoo_name(self):
        built = build_toffoli("qutrit_tree", 4)
        route = RouteToTopology("heavy_hex")
        route.transform(built.circuit)
        assert route.last_metadata["topology"].startswith("heavy-hex")

    def test_topology_by_spec(self):
        from repro.arch.topology import TopologySpec

        built = build_toffoli("qutrit_tree", 4)
        route = RouteToTopology(TopologySpec("ring", {"size": 5}))
        route.transform(built.circuit)
        assert route.last_metadata["topology"] == "ring(5)"

    def test_metadata_and_last_routed(self):
        built = build_toffoli("qutrit_tree", 4)
        route = RouteToTopology(line)
        routed_circuit = route.transform(built.circuit)
        meta = route.last_metadata
        assert meta["routed_depth"] == routed_circuit.depth
        assert meta["depth_overhead"] >= 1.0
        assert meta["swap_overhead"] >= 0.0
        assert route.last_routed is not None
        assert route.last_routed.circuit == routed_circuit
        assert set(route.last_routed.final_placement) == set(
            built.circuit.all_qudits()
        )

    def test_lookahead_routes_undecomposed_circuits(self):
        # The v2 router lowers 3-wire gates itself; no DecomposeToWidth2
        # needed upstream.
        built = build_toffoli("qutrit_tree", 4, decompose=False)
        route = RouteToTopology(line)
        routed = route.transform(built.circuit)
        assert routed.max_gate_width() <= 2


class TestScheduling:
    def _barriered(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a)])
        circuit.barrier()
        circuit.append([X.on(b)])
        return circuit

    def test_merge_moments_preserves_barriers(self):
        circuit = self._barriered()
        merged = MergeMoments().transform(circuit)
        assert merged.depth == 2

    def test_asap_reschedule_drops_barriers(self):
        circuit = self._barriered()
        packed = ASAPReschedule().transform(circuit)
        assert packed.depth == 1

    def test_transform_operations_replays_barriers(self):
        circuit = self._barriered()
        identity = transform_operations(circuit, lambda op: [op])
        assert identity.depth == 2
        assert identity.barrier_floors == (1,)


class TestPipelines:
    def test_pipeline_trace(self):
        plain = build_toffoli("qutrit_tree", 4, decompose=False).circuit
        compiled = lowering_pipeline().compile(plain)
        assert compiled.pass_names == ("DecomposeToWidth2", "MergeMoments")
        assert len(compiled.pass_metadata) == 2
        assert compiled.input_depth == plain.depth
        assert "DecomposeToWidth2" in compiled.report()

    def test_then_extends_immutably(self):
        base = CompilePipeline([DecomposeToWidth2()])
        extended = base.then(MergeMoments())
        assert len(base) == 1
        assert len(extended) == 2

    def test_qutrit_promotion_pipeline_on_qubit_circuit(self):
        a, b = qubits(2)
        circuit = Circuit([X.on(a), CNOT.on(a, b)])
        compiled = qutrit_promotion_pipeline().compile(circuit)
        assert all(
            w.dimension == 3 for w in compiled.circuit.all_qudits()
        )
