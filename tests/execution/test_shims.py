"""The deprecated top-level simulator exports forward with a warning."""

from __future__ import annotations

import warnings

import pytest

import repro
import repro.sim


DEPRECATED = [
    "ClassicalSimulator",
    "StateVectorSimulator",
    "TrajectorySimulator",
    "FidelityEstimate",
    "estimate_circuit_fidelity",
]


@pytest.mark.parametrize("name", DEPRECATED)
def test_shim_warns_and_forwards_identically(name):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        shimmed = getattr(repro, name)
    assert shimmed is getattr(repro.sim, name)


def test_shimmed_simulator_still_works():
    from repro.toffoli.registry import build_toffoli

    with pytest.warns(DeprecationWarning):
        simulator_cls = repro.ClassicalSimulator
    built = build_toffoli("qutrit_tree", 3, decompose=False)
    wires = built.controls + [built.target]
    out = simulator_cls().run_values(built.circuit, wires, (1, 1, 1, 0))
    assert out == (1, 1, 1, 1)


def test_sim_module_imports_stay_warning_free():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        from repro.sim import ClassicalSimulator  # noqa: F401


def test_new_api_importable_from_top_level():
    from repro import (  # noqa: F401
        Backend,
        CompilePipeline,
        FidelityResult,
        RunResult,
        execute,
    )


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.not_a_thing
