"""Canonical circuit identity: fingerprints, cache keys, and sharding.

Regression suite for the documented cache-collision hazard the v1
fingerprint carried (same-named gates with different matrices collided)
and for the guarantee that process-pool sharding over *serialized*
circuits returns results identical to the in-process path.
"""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.execution import ResultCache, circuit_fingerprint, execute
from repro.gates import CNOT, H, MatrixGate
from repro.noise.model import NoiseModel
from repro.qudits import qubits
from repro.sim.fidelity import estimate_circuit_fidelity
from repro.sim.parallel import (
    estimate_circuit_fidelity_parallel,
    merge_estimates,
)
from repro.toffoli.registry import build_toffoli

NOISY = NoiseModel("noisy", 2e-3, 1e-3, 1e-7, 3e-7, t1=None)


class TestFingerprintIdentity:
    def test_same_name_different_matrix_fingerprints_differ(self):
        """Regression: same-named gates must not collide (old hazard)."""
        wire = qubits(1)[0]
        gate_a = MatrixGate(np.eye(2), (2,), name="G")
        gate_b = MatrixGate(np.diag([1, -1]), (2,), name="G")
        circuit_a = Circuit([gate_a.on(wire)])
        circuit_b = Circuit([gate_b.on(wire)])
        assert circuit_fingerprint(circuit_a) != circuit_fingerprint(
            circuit_b
        )

    def test_fingerprint_tracks_structural_equality(self):
        a = build_toffoli("qutrit_tree", 4).circuit
        b = build_toffoli("qutrit_tree", 4).circuit
        assert a == b
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        c = build_toffoli("qutrit_tree", 5).circuit
        assert circuit_fingerprint(a) != circuit_fingerprint(c)

    def test_fingerprint_survives_serialization(self):
        circuit = build_toffoli("wang_chain", 4).circuit
        rebuilt = Circuit.from_json(circuit.to_json())
        assert circuit_fingerprint(rebuilt) == circuit_fingerprint(circuit)

    def test_wire_binding_matters(self):
        a, b = qubits(2)
        assert circuit_fingerprint(
            Circuit([CNOT.on(a, b)])
        ) != circuit_fingerprint(Circuit([CNOT.on(b, a)]))

    def test_signed_zero_does_not_split_fingerprints(self):
        """Regression: -0.0 and 0.0 compare equal, so structurally
        equal circuits (e.g. via np.conj in gate inverses) must
        fingerprint equal too."""
        from repro.gates import S, S_DAG

        wire = qubits(1)[0]
        via_inverse = Circuit([S.inverse().on(wire)])
        direct = Circuit([S_DAG.on(wire)])
        assert via_inverse == direct
        assert circuit_fingerprint(via_inverse) == circuit_fingerprint(
            direct
        )


class TestCacheCanonicalKeys:
    def test_cache_hits_across_equivalent_builds(self):
        """Two separately-built equal circuits share one cache line."""
        cache = ResultCache()
        first = execute(
            build_toffoli("qutrit_tree", 4).circuit,
            backend="statevector",
            cache=cache,
        )
        assert cache.stats.hits == 0
        second = execute(
            build_toffoli("qutrit_tree", 4).circuit,
            backend="statevector",
            cache=cache,
        )
        assert cache.stats.hits == 1
        assert np.allclose(first.state.vector, second.state.vector)

    def test_colliding_names_get_distinct_entries(self):
        wire = qubits(1)[0]
        gate_a = MatrixGate(np.eye(2), (2,), name="G")
        gate_b = MatrixGate(
            np.array([[0, 1], [1, 0]], dtype=complex), (2,), name="G"
        )
        cache = ResultCache()
        result_a = execute(
            Circuit([gate_a.on(wire)]), backend="statevector", cache=cache
        )
        result_b = execute(
            Circuit([gate_b.on(wire)]), backend="statevector", cache=cache
        )
        assert cache.stats.hits == 0
        assert not np.allclose(
            result_a.state.vector, result_b.state.vector
        )


class TestSerializedSharding:
    def _circuit(self):
        a, b, c = qubits(3)
        return Circuit([H.on(a), CNOT.on(a, b), CNOT.on(b, c)])

    def test_pool_tasks_carry_serialized_circuits(self):
        """What crosses the process boundary is the JSON wire form."""
        from repro.execution.facade import _Task, _serialized

        circuit = self._circuit()
        task = _Task(
            circuit=circuit, backend="statevector", noise_model=None,
            wires=None, initial=None, shots=None, trials=None,
            seed=None, params=(), point=0, shard=0,
        )
        shipped = _serialized(task)
        assert shipped.circuit is None
        assert Circuit.from_json(shipped.circuit_data) == circuit
        # Idempotent: serializing an already-serialized task is a no-op.
        assert _serialized(shipped) is shipped

    def test_pool_shards_match_in_process_estimates_exactly(self):
        """The worker path (JSON-serialized circuits) is bit-identical to
        running the same shards in process."""
        circuit = self._circuit()
        trials, seed, workers = 40, 7, 2
        pooled = estimate_circuit_fidelity_parallel(
            circuit, NOISY, trials=trials, seed=seed, workers=workers
        )
        wires = circuit.all_qudits()
        base, extra = divmod(trials, workers)
        in_process = merge_estimates(
            [
                estimate_circuit_fidelity(
                    circuit,
                    NOISY,
                    trials=base + (1 if index < extra else 0),
                    seed=seed * 1_000_003 + index,
                    wires=wires,
                    circuit_name="circuit",
                )
                for index in range(workers)
            ]
        )
        assert pooled.mean_fidelity == in_process.mean_fidelity
        assert pooled.std_error == in_process.std_error
        assert pooled.trials == in_process.trials

    @pytest.mark.slow
    def test_parallel_sweep_matches_serial_exactly_on_statevector(self):
        serial = execute(
            "qutrit_tree",
            backend="statevector",
            sweep={"num_controls": [3, 4]},
        )
        parallel = execute(
            "qutrit_tree",
            backend="statevector",
            sweep={"num_controls": [3, 4]},
            parallel=True,
            workers=2,
        )
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.state.vector, p.state.vector)
