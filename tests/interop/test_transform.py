"""Lift/lower gate transforms and the LiftToQutrits/LowerToQubits passes."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import InteropError
from repro.gates.controlled import ControlledGate
from repro.gates.embedded import EmbeddedGate
from repro.gates.qubit import CNOT, H, S, T, TOFFOLI, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.interop import (
    LiftToQutrits,
    LowerToQubits,
    lift_circuit,
    lift_gate,
    lower_circuit,
    lower_gate,
)
from repro.qudits import Qudit, qubits, qutrits


def _bell_pair():
    a, b = qubits(2)
    return Circuit([H.on(a), CNOT.on(a, b)])


class TestLiftGate:
    def test_plain_gate_wraps_in_embedding(self):
        lifted = lift_gate(H, (3,))
        assert isinstance(lifted, EmbeddedGate)
        assert lifted.sub_gate is H

    def test_controlled_gate_lifts_through_structure(self):
        lifted = lift_gate(CNOT, (3, 3))
        assert isinstance(lifted, ControlledGate)
        assert lifted.control_values == CNOT.control_values
        assert lifted.dims == (3, 3)

    def test_toffoli_stays_multi_controlled(self):
        lifted = lift_gate(TOFFOLI, (3, 3, 3))
        assert isinstance(lifted, ControlledGate)
        assert lifted.num_controls == 2

    def test_lift_to_own_dims_is_identity(self):
        assert lift_gate(H, (2,)) is H

    def test_embedded_gate_relifts_from_sub_gate(self):
        lifted = lift_gate(EmbeddedGate(H, (3,)), (4,))
        assert isinstance(lifted, EmbeddedGate)
        assert lifted.sub_gate is H
        assert lifted.dims == (4,)

    def test_shrinking_lift_rejected(self):
        with pytest.raises(InteropError, match="cannot lift"):
            lift_gate(X01, (2,))


class TestLowerGate:
    def test_lower_unwraps_embedding(self):
        assert lower_gate(EmbeddedGate(H, (3,)), (2,)) is H

    def test_lower_inverts_lift(self):
        for gate, dims in [(H, (3,)), (CNOT, (3, 3)), (S, (4,))]:
            lifted = lift_gate(gate, dims)
            lowered = lower_gate(lifted, gate.dims)
            assert np.allclose(lowered.unitary(), gate.unitary())

    def test_control_on_removed_level_drops(self):
        gate = ControlledGate(X01, (3,), (2,))
        assert lower_gate(gate, (2, 2)) is None

    def test_leaking_gate_rejected(self):
        # X+1 maps |1> -> |2>: the qubit subspace is not invariant.
        with pytest.raises(InteropError, match="not transient"):
            lower_gate(X_PLUS_1, (2,))

    def test_growing_lower_rejected(self):
        with pytest.raises(InteropError, match="cannot lower"):
            lower_gate(H, (3,))


class TestLiftToQutrits:
    def test_wires_and_metadata(self):
        lift = LiftToQutrits()
        lifted = lift.transform(_bell_pair())
        dims = {w.dimension for w in lifted.all_qudits()}
        assert dims == {3}
        assert lift.last_metadata == {
            "lifted_wires": 2,
            "lifted_gates": 2,
            "target_dimension": 3,
        }

    def test_custom_dimension(self):
        lifted = lift_circuit(_bell_pair(), dim=4)
        assert {w.dimension for w in lifted.all_qudits()} == {4}

    def test_dim_below_three_rejected(self):
        with pytest.raises(ValueError, match=">= 3"):
            LiftToQutrits(2)

    def test_index_collision_raises_typed_error(self):
        circuit = Circuit(
            [H.on(Qudit(0, 2)), X01.on(Qudit(0, 3))]
        )
        with pytest.raises(InteropError, match="already exists"):
            lift_circuit(circuit)

    def test_mixed_circuit_lifts_only_qubit_wires(self):
        q2 = Qudit(0, 2)
        q3 = Qudit(1, 3)
        circuit = Circuit([H.on(q2), X01.on(q3)])
        lifted = lift_circuit(circuit)
        assert {w.dimension for w in lifted.all_qudits()} == {3}
        assert lifted.num_operations == 2


class TestLowerToQubits:
    def test_round_trip_restores_circuit(self):
        circuit = _bell_pair()
        assert lower_circuit(lift_circuit(circuit)) == circuit

    def test_round_trip_with_multi_control(self):
        a, b, c = qubits(3)
        circuit = Circuit(
            [H.on(a), TOFFOLI.on(a, b, c), T.on(c), CNOT.on(b, c)]
        )
        assert lower_circuit(lift_circuit(circuit)) == circuit

    def test_verify_records_oracle(self):
        lower = LowerToQubits(verify=True)
        lower.transform(lift_circuit(_bell_pair()))
        assert lower.last_metadata["verified"] in (
            "classical", "statevector"
        )
        assert lower.last_metadata["lowered_wires"] == 2

    def test_drops_unfireable_control(self):
        a, b = qutrits(2)
        lower = LowerToQubits()
        lowered = lower.transform(
            Circuit(
                [
                    EmbeddedGate(X, (3,)).on(a),
                    ControlledGate(X01, (3,), (2,)).on(a, b),
                ]
            )
        )
        assert lowered.num_operations == 1
        assert lower.last_metadata["dropped"] == 1

    def test_native_leakage_rejected(self):
        (a,) = qutrits(1)
        with pytest.raises(InteropError, match="not transient"):
            lower_circuit(Circuit([X_PLUS_1.on(a)]))


class TestDeprecatedPromoteShim:
    def test_promote_warns_and_delegates(self):
        from repro.execution.passes import PromoteQubitsToQutrits

        with pytest.warns(DeprecationWarning, match="LiftToQutrits"):
            promote = PromoteQubitsToQutrits()
        promoted = promote.transform(_bell_pair())
        assert {w.dimension for w in promoted.all_qudits()} == {3}
        assert promote.last_metadata["promoted_wires"] == 2

    def test_promote_collision_keeps_old_error_type(self):
        from repro.exceptions import DecompositionError
        from repro.execution.passes import PromoteQubitsToQutrits

        circuit = Circuit(
            [H.on(Qudit(0, 2)), X01.on(Qudit(0, 3))]
        )
        with pytest.warns(DeprecationWarning):
            promote = PromoteQubitsToQutrits()
        with pytest.raises(DecompositionError, match="already exists"):
            promote.transform(circuit)
