"""Test package (enables package-relative helper imports)."""
