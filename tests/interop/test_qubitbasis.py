"""CNOT + single-qubit lowering: the naive-lift baseline compiler."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import InteropError
from repro.gates.controlled import ControlledGate
from repro.gates.matrix import MatrixGate
from repro.gates.qubit import (
    CNOT,
    H,
    P,
    RY,
    RZ,
    S,
    SWAP,
    T,
    TOFFOLI,
    X,
    Z,
)
from repro.gates.qutrit import X01
from repro.interop import (
    DecomposeToQubitBasis,
    subspace_equivalent,
    to_qubit_basis,
    zyz_angles,
)
from repro.interop.workloads import grover_circuit, qft_circuit
from repro.qudits import qubits, qutrits


def _random_unitary(rng):
    matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def _is_qubit_basis(circuit):
    for op in circuit.all_operations():
        if op.gate.num_qudits == 1:
            continue
        if op.gate.canonical_spec() != CNOT.canonical_spec():
            return False
    return True


class TestZyzAngles:
    @pytest.mark.parametrize("seed", range(8))
    def test_reconstruction(self, seed):
        rng = np.random.default_rng(seed)
        unitary = _random_unitary(rng)
        alpha, beta, gamma, delta = zyz_angles(unitary)
        rebuilt = (
            np.exp(1j * alpha)
            * RZ(beta).unitary()
            @ RY(gamma).unitary()
            @ RZ(delta).unitary()
        )
        assert np.allclose(rebuilt, unitary, atol=1e-9)

    @pytest.mark.parametrize(
        "gate", [H, S, T, X, Z, P(0.3), RY(1.1), RZ(-2.7)]
    )
    def test_named_gates(self, gate):
        unitary = gate.unitary()
        alpha, beta, gamma, delta = zyz_angles(unitary)
        rebuilt = (
            np.exp(1j * alpha)
            * RZ(beta).unitary()
            @ RY(gamma).unitary()
            @ RZ(delta).unitary()
        )
        assert np.allclose(rebuilt, unitary, atol=1e-9)


class TestToQubitBasis:
    @pytest.mark.parametrize("seed", range(5))
    def test_controlled_random_unitary(self, seed):
        rng = np.random.default_rng(100 + seed)
        sub = MatrixGate(_random_unitary(rng), (2,), name="U")
        a, b = qubits(2)
        op = ControlledGate(sub, (2,)).on(a, b)
        decomposed = Circuit(to_qubit_basis(op))
        assert _is_qubit_basis(decomposed)
        assert subspace_equivalent(Circuit([op]), decomposed)

    def test_control_value_zero(self):
        a, b = qubits(2)
        op = ControlledGate(H, (2,), (0,)).on(a, b)
        decomposed = Circuit(to_qubit_basis(op))
        assert _is_qubit_basis(decomposed)
        assert subspace_equivalent(Circuit([op]), decomposed)

    def test_controlled_phase_uses_five_ops(self):
        a, b = qubits(2)
        op = ControlledGate(P(0.7), (2,)).on(a, b)
        ops = to_qubit_basis(op)
        assert len(ops) == 5
        assert subspace_equivalent(Circuit([op]), Circuit(ops))

    def test_cnot_passes_through(self):
        a, b = qubits(2)
        ops = to_qubit_basis(CNOT.on(a, b))
        assert len(ops) == 1
        assert ops[0].gate.canonical_spec() == CNOT.canonical_spec()

    def test_toffoli_lowers_to_fifteen(self):
        a, b, c = qubits(3)
        op = TOFFOLI.on(a, b, c)
        ops = to_qubit_basis(op)
        assert len(ops) == 15
        decomposed = Circuit(ops)
        assert _is_qubit_basis(decomposed)
        assert subspace_equivalent(Circuit([op]), decomposed)

    def test_swap_is_three_cnots(self):
        a, b = qubits(2)
        ops = to_qubit_basis(SWAP.on(a, b))
        assert len(ops) == 3
        assert all(
            op.gate.canonical_spec() == CNOT.canonical_spec()
            for op in ops
        )
        assert subspace_equivalent(
            Circuit([SWAP.on(a, b)]), Circuit(ops)
        )

    def test_two_controlled_unitary(self):
        a, b, c = qubits(3)
        op = ControlledGate(T, (2, 2)).on(a, b, c)
        decomposed = Circuit(to_qubit_basis(op))
        assert _is_qubit_basis(decomposed)
        assert subspace_equivalent(Circuit([op]), decomposed)

    def test_non_qubit_wire_rejected(self):
        (a,) = qutrits(1)
        with pytest.raises(InteropError):
            to_qubit_basis(X01.on(a))


class TestDecomposeToQubitBasisPass:
    @pytest.mark.parametrize(
        "circuit", [qft_circuit(3), grover_circuit(2)]
    )
    def test_workloads_lower_and_stay_equivalent(self, circuit):
        compile_pass = DecomposeToQubitBasis()
        lowered = compile_pass.transform(circuit)
        assert _is_qubit_basis(lowered)
        assert subspace_equivalent(circuit, lowered)
        metadata = compile_pass.last_metadata
        assert metadata["input_operations"] == circuit.num_operations
        assert metadata["output_operations"] == lowered.num_operations

    def test_qutrit_circuit_rejected(self):
        (a,) = qutrits(1)
        with pytest.raises(InteropError):
            DecomposeToQubitBasis().transform(Circuit([X01.on(a)]))
