"""EmbeddedGate: block-diagonal lifting as a first-class gate."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import DimensionMismatchError
from repro.gates import GATE_REGISTRY
from repro.gates.embedded import EmbeddedGate
from repro.gates.qubit import CNOT, H, S, SWAP, T, X
from repro.qudits import Qudit


class TestUnitaryStructure:
    def test_x_into_qutrit_is_block_diagonal(self):
        lifted = EmbeddedGate(X, (3,))
        expected = np.eye(3, dtype=complex)
        expected[:2, :2] = X.unitary()
        assert np.allclose(lifted.unitary(), expected)

    def test_added_levels_are_fixed(self):
        lifted = EmbeddedGate(H, (4,))
        unitary = lifted.unitary()
        assert np.allclose(unitary[2:, 2:], np.eye(2))
        assert np.allclose(unitary[2:, :2], 0)
        assert np.allclose(unitary[:2, 2:], 0)

    def test_two_wire_embedding_acts_on_sub_block(self):
        lifted = EmbeddedGate(SWAP, (3, 3))
        unitary = lifted.unitary()
        # Subspace states: (0,0)->0, (0,1)->1, (1,0)->3, (1,1)->4.
        embed = [0, 1, 3, 4]
        assert np.allclose(
            unitary[np.ix_(embed, embed)], SWAP.unitary()
        )
        fixed = [k for k in range(9) if k not in embed]
        assert np.allclose(
            unitary[np.ix_(fixed, fixed)], np.eye(len(fixed))
        )

    def test_embedding_is_unitary(self):
        lifted = EmbeddedGate(CNOT, (3, 3))
        unitary = lifted.unitary()
        assert np.allclose(
            unitary.conj().T @ unitary, np.eye(9), atol=1e-12
        )


class TestValidation:
    def test_wrong_arity_rejected(self):
        with pytest.raises(DimensionMismatchError, match="needs 1 dims"):
            EmbeddedGate(X, (3, 3))

    def test_shrinking_dims_rejected(self):
        with pytest.raises(DimensionMismatchError, match="smaller"):
            EmbeddedGate(SWAP, (2, 1))

    def test_identity_embedding_rejected(self):
        with pytest.raises(ValueError, match="no-op"):
            EmbeddedGate(X, (2,))


class TestFastPaths:
    def test_classical_sub_gate_keeps_permutation(self):
        lifted = EmbeddedGate(X, (3,))
        assert lifted.permutation() == [1, 0, 2]

    def test_two_wire_permutation_matches_unitary(self):
        lifted = EmbeddedGate(CNOT, (3, 3))
        table = lifted.permutation()
        unitary = lifted.unitary()
        for source, image in enumerate(table):
            assert unitary[image, source] == pytest.approx(1.0)

    def test_diagonal_sub_gate_keeps_phases(self):
        lifted = EmbeddedGate(S, (3,))
        phases = lifted.diagonal_phases()
        assert phases is not None
        assert np.allclose(phases, [1, 1j, 1])

    def test_non_diagonal_sub_gate_has_no_phases(self):
        assert EmbeddedGate(H, (3,)).diagonal_phases() is None


class TestIdentityAndSerialization:
    def test_spec_round_trips_through_registry(self):
        lifted = EmbeddedGate(T, (3,))
        rebuilt = GATE_REGISTRY.build(lifted.spec())
        assert isinstance(rebuilt, EmbeddedGate)
        assert rebuilt.dims == (3,)
        assert np.allclose(rebuilt.unitary(), lifted.unitary())

    def test_circuit_serialization_round_trip(self):
        wires = [Qudit(0, 3), Qudit(1, 3)]
        circuit = Circuit(
            [
                EmbeddedGate(H, (3,)).on(wires[0]),
                EmbeddedGate(CNOT, (3, 3)).on(*wires),
            ]
        )
        assert Circuit.from_json(circuit.to_json()) == circuit

    def test_fingerprint_stable_across_round_trip(self):
        from repro.execution.cache import circuit_fingerprint

        wires = [Qudit(0, 3)]
        circuit = Circuit([EmbeddedGate(S, (3,)).on(wires[0])])
        replayed = Circuit.from_json(circuit.to_json())
        assert circuit_fingerprint(circuit) == circuit_fingerprint(
            replayed
        )

    def test_canonical_spec_ignores_display_name(self):
        a = EmbeddedGate(T, (3,), name="alpha")
        b = EmbeddedGate(T, (3,), name="beta")
        assert a.spec() != b.spec()
        assert a.canonical_spec() == b.canonical_spec()

    def test_inverse_unwraps_to_sub_inverse(self):
        lifted = EmbeddedGate(S, (3,))
        inverse = lifted.inverse()
        assert np.allclose(
            inverse.unitary() @ lifted.unitary(), np.eye(3), atol=1e-12
        )
