"""The interop benchmark's qubit workload generators."""

import numpy as np
import pytest

from repro.exceptions import InteropError
from repro.execution import execute
from repro.interop.workloads import (
    WORKLOADS,
    build_workload,
    grover_circuit,
    qft_circuit,
    random_clifford_t,
    ripple_carry_adder,
)
from repro.sim.state import StateVector
from repro.sim.statevector import StateVectorSimulator


class TestQft:
    def test_matches_dft_matrix(self):
        n = 3
        circuit = qft_circuit(n)
        wires = circuit.all_qudits()
        size = 2 ** n
        simulator = StateVectorSimulator()
        unitary = np.zeros((size, size), dtype=complex)
        for column in range(size):
            bits = [(column >> (n - 1 - i)) & 1 for i in range(n)]
            state = simulator.run(
                circuit,
                StateVector.computational_basis(list(wires), bits),
                wires=wires,
            )
            unitary[:, column] = state.vector
        omega = np.exp(2j * np.pi / size)
        dft = np.array(
            [
                [omega ** (row * column) for column in range(size)]
                for row in range(size)
            ]
        ) / np.sqrt(size)
        assert np.allclose(unitary, dft, atol=1e-9)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            qft_circuit(0)


class TestAdder:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_adds_mod_2n_with_carry(self, n):
        circuit = ripple_carry_adder(n)
        wires = circuit.all_qudits()
        for a in range(2 ** n):
            for b in range(2 ** n):
                values = [0] * (2 * n + 2)
                for k in range(n):
                    values[1 + 2 * k] = (b >> k) & 1
                    values[2 + 2 * k] = (a >> k) & 1
                out = execute(
                    circuit,
                    backend="classical",
                    wires=wires,
                    initial=values,
                ).values
                total = a + b
                assert [
                    out[1 + 2 * k] for k in range(n)
                ] == [(total >> k) & 1 for k in range(n)]
                assert out[2 * n + 1] == (total >> n) & 1
                # a register and carry-in are restored in place.
                assert [
                    out[2 + 2 * k] for k in range(n)
                ] == [(a >> k) & 1 for k in range(n)]
                assert out[0] == 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestRandomCliffordT:
    def test_seed_determinism(self):
        assert random_clifford_t(3, depth=15, seed=7) == \
            random_clifford_t(3, depth=15, seed=7)
        assert random_clifford_t(3, depth=15, seed=7) != \
            random_clifford_t(3, depth=15, seed=8)

    def test_gate_set(self):
        circuit = random_clifford_t(4, depth=30, seed=1)
        assert circuit.num_operations == 30
        for op in circuit.all_operations():
            assert op.gate.name in ("H", "S", "T", "C[1]X")

    def test_width_validation(self):
        with pytest.raises(ValueError):
            random_clifford_t(1)


class TestGrover:
    def test_two_qubit_search_is_exact(self):
        circuit = grover_circuit(2)
        result = execute(circuit, backend="statevector")
        assert np.isclose(result.probability_of((1, 1)), 1.0, atol=1e-9)

    def test_three_qubit_search_amplifies(self):
        circuit = grover_circuit(3, iterations=2)
        result = execute(circuit, backend="statevector")
        assert result.probability_of((1, 1, 1)) > 0.9

    def test_width_cap(self):
        with pytest.raises(InteropError, match="grover"):
            grover_circuit(4)


class TestRegistry:
    def test_build_workload_dispatch(self):
        assert build_workload("qft", n=3) == qft_circuit(3)
        assert set(WORKLOADS) == {
            "qft", "adder", "clifford_t", "grover"
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(InteropError, match="unknown workload"):
            build_workload("vqe")
