"""Subspace equivalence oracles for lifted circuits."""

import pytest

from repro.circuits.circuit import Circuit
from repro.exceptions import InteropError
from repro.gates.controlled import ControlledGate
from repro.gates.embedded import EmbeddedGate
from repro.gates.qubit import CNOT, H, T, TOFFOLI, X
from repro.gates.qutrit import X01, X_PLUS_1
from repro.interop import (
    assert_subspace_equivalent,
    lift_circuit,
    subspace_equivalence_method,
    subspace_equivalent,
)
from repro.qudits import qubits, qutrits


def _classical_circuit():
    a, b, c = qubits(3)
    return Circuit([X.on(a), CNOT.on(a, b), TOFFOLI.on(a, b, c)])


def _dense_circuit():
    a, b = qubits(2)
    return Circuit([H.on(a), CNOT.on(a, b), T.on(b)])


class TestMethodSelection:
    def test_classical_pair_uses_classical_oracle(self):
        circuit = _classical_circuit()
        assert subspace_equivalence_method(
            circuit, lift_circuit(circuit)
        ) == "classical"

    def test_dense_pair_uses_statevector_oracle(self):
        circuit = _dense_circuit()
        assert subspace_equivalence_method(
            circuit, lift_circuit(circuit)
        ) == "statevector"


class TestEquivalence:
    @pytest.mark.parametrize(
        "build", [_classical_circuit, _dense_circuit]
    )
    def test_lift_is_subspace_equivalent(self, build):
        circuit = build()
        assert subspace_equivalent(circuit, lift_circuit(circuit))

    @pytest.mark.parametrize(
        "build", [_classical_circuit, _dense_circuit]
    )
    def test_tampered_lift_detected(self, build):
        circuit = build()
        lifted = lift_circuit(circuit)
        wire = lifted.all_qudits()[0]
        tampered = Circuit(
            list(lifted.all_operations()) + [EmbeddedGate(X, (3,)).on(wire)]
        )
        assert not subspace_equivalent(circuit, tampered)

    def test_leaking_lift_detected(self):
        circuit = _classical_circuit()
        lifted = lift_circuit(circuit)
        wire = lifted.all_qudits()[0]
        leaking = Circuit(
            list(lifted.all_operations()) + [X_PLUS_1.on(wire)]
        )
        assert not subspace_equivalent(circuit, leaking)

    def test_phase_error_detected_by_statevector_oracle(self):
        circuit = _dense_circuit()
        lifted = lift_circuit(circuit)
        wire = lifted.all_qudits()[1]
        tampered = Circuit(
            list(lifted.all_operations()) + [EmbeddedGate(T, (3,)).on(wire)]
        )
        assert not subspace_equivalent(circuit, tampered)

    def test_equivalent_rewrites_accepted(self):
        # Lifted CNOT as a ControlledGate vs the same action embedded
        # whole: different structure, same subspace action.
        a3, b3 = qutrits(2)
        a2, b2 = qubits(2)
        original = Circuit([CNOT.on(a2, b2)])
        rewritten = Circuit(
            [ControlledGate(EmbeddedGate(X, (3,)), (3,), (1,)).on(a3, b3)]
        )
        assert subspace_equivalent(original, rewritten)


class TestAssertHelper:
    def test_returns_oracle_name(self):
        circuit = _classical_circuit()
        assert assert_subspace_equivalent(
            circuit, lift_circuit(circuit)
        ) == "classical"

    def test_raises_typed_error_with_context(self):
        circuit = _dense_circuit()
        lifted = lift_circuit(circuit)
        wire = lifted.all_qudits()[0]
        tampered = Circuit(
            list(lifted.all_operations()) + [EmbeddedGate(X, (3,)).on(wire)]
        )
        with pytest.raises(InteropError, match="bench"):
            assert_subspace_equivalent(
                circuit, tampered, context="bench"
            )


class TestWirePairing:
    def test_wire_count_mismatch_rejected(self):
        a2, b2 = qubits(2)
        (a3,) = qutrits(1)
        with pytest.raises(InteropError):
            subspace_equivalent(
                Circuit([CNOT.on(a2, b2)]), Circuit([X01.on(a3)])
            )

    def test_shrunken_wire_rejected(self):
        (a3,) = qutrits(1)
        (a2,) = qubits(1)
        with pytest.raises(InteropError):
            subspace_equivalent(
                Circuit([X01.on(a3)]), Circuit([X.on(a2)])
            )
