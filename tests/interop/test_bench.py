"""Interop benchmark: strategies, records, and the regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.interop.bench import (
    INTEROP_CASES,
    INTEROP_SCHEMA,
    INTEROP_SMOKE_CASES,
    INTEROP_SMOKE_TOPOLOGIES,
    INTEROP_TOPOLOGIES,
    STRATEGIES,
    check_interop_regression,
    compile_strategy,
    interop_record_key,
    render_interop_table,
    run_interop_bench,
)
from repro.interop.verify import subspace_equivalent
from repro.interop.workloads import build_workload

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def smoke_report():
    return run_interop_bench(smoke=True)


class TestCompileStrategy:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_strategies_preserve_semantics(self, strategy):
        original = build_workload("qft", n=3)
        compiled = compile_strategy(original, strategy)
        assert {w.dimension for w in compiled.all_qudits()} == {3}
        assert all(
            op.gate.num_qudits <= 2 for op in compiled.all_operations()
        )
        assert subspace_equivalent(original, compiled)

    def test_ternary_beats_naive_on_toffoli_workload(self):
        original = build_workload("adder", n=2)
        naive = compile_strategy(original, "naive")
        ternary = compile_strategy(original, "ternary")
        assert ternary.num_operations < naive.num_operations
        assert ternary.depth < naive.depth

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            compile_strategy(build_workload("qft", n=3), "hybrid")


class TestRunInteropBench:
    def test_report_shape(self, smoke_report):
        assert smoke_report["schema"] == INTEROP_SCHEMA
        assert smoke_report["smoke"] is True
        expected = (
            len(INTEROP_SMOKE_CASES)
            * len(STRATEGIES)
            * len(INTEROP_SMOKE_TOPOLOGIES)
        )
        assert len(smoke_report["records"]) == expected

    def test_every_record_verified(self, smoke_report):
        assert all(
            r["verified"] in ("classical", "statevector")
            for r in smoke_report["records"]
        )

    def test_headline_ternary_wins(self, smoke_report):
        cells = smoke_report["headline"]["naive_vs_ternary"]
        assert cells
        assert all(c["ternary_beats_naive"] for c in cells)

    def test_record_keys_unique(self, smoke_report):
        keys = [
            interop_record_key(r) for r in smoke_report["records"]
        ]
        assert len(keys) == len(set(keys))

    def test_render_table(self, smoke_report):
        table = render_interop_table(smoke_report)
        assert "temporary ternary vs naive lift" in table
        assert "[WIN]" in table

    def test_smoke_is_prefix_of_full_sweep(self):
        assert INTEROP_SMOKE_CASES == INTEROP_CASES[
            : len(INTEROP_SMOKE_CASES)
        ]
        assert set(INTEROP_SMOKE_TOPOLOGIES) <= set(INTEROP_TOPOLOGIES)


class TestCommittedBaseline:
    def test_committed_report_matches_fresh_smoke(self, smoke_report):
        committed = json.loads(
            (REPO_ROOT / "BENCH_interop.json").read_text()
        )
        assert committed["schema"] == INTEROP_SCHEMA
        assert check_interop_regression(committed, smoke_report) == []
        # Smoke rows all join against the committed full sweep.
        baseline = {
            interop_record_key(r) for r in committed["records"]
        }
        assert {
            interop_record_key(r) for r in smoke_report["records"]
        } <= baseline

    def test_committed_claim_holds(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_interop.json").read_text()
        )
        cells = committed["headline"]["naive_vs_ternary"]
        topologies = {c["topology_kind"] for c in cells}
        assert {"line", "grid_2d"} <= topologies
        for workload in ("qft", "adder"):
            wins = [
                c for c in cells if c["workload"] == workload
            ]
            assert wins and all(
                c["ternary_beats_naive"] for c in wins
            )


class TestRegressionGate:
    def test_identical_reports_pass(self, smoke_report):
        assert check_interop_regression(
            smoke_report, smoke_report
        ) == []

    def test_metric_blowup_fails(self, smoke_report):
        degraded = copy.deepcopy(smoke_report)
        degraded["records"][0]["gate_count"] *= 10
        failures = check_interop_regression(smoke_report, degraded)
        assert any("gate_count" in f for f in failures)

    def test_missing_verification_fails(self, smoke_report):
        degraded = copy.deepcopy(smoke_report)
        degraded["records"][0]["verified"] = ""
        failures = check_interop_regression(smoke_report, degraded)
        assert any("no longer verified" in f for f in failures)

    def test_lost_win_fails(self, smoke_report):
        degraded = copy.deepcopy(smoke_report)
        cell = degraded["headline"]["naive_vs_ternary"][0]
        cell["ternary_beats_naive"] = False
        failures = check_interop_regression(smoke_report, degraded)
        assert any("no longer beats" in f for f in failures)

    def test_unjoined_rows_ignored(self, smoke_report):
        fresh = copy.deepcopy(smoke_report)
        fresh["records"][0]["workload"] = "brand-new"
        fresh["headline"]["naive_vs_ternary"] = []
        assert check_interop_regression(smoke_report, fresh) == []
