"""Tests for the linear-algebra toolkit."""

import numpy as np
import pytest

from repro.linalg import (
    allclose_up_to_global_phase,
    fidelity,
    is_permutation_matrix,
    is_unitary,
    kron_all,
    matrix_root,
    permutation_of,
    random_state_vector,
    random_unitary,
)


class TestPredicates:
    def test_identity_is_unitary(self):
        assert is_unitary(np.eye(5))

    def test_scaled_identity_is_not_unitary(self):
        assert not is_unitary(2 * np.eye(3))

    def test_non_square_is_not_unitary(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_hadamard_is_unitary(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert is_unitary(h)

    def test_permutation_matrix_detection(self):
        p = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        assert is_permutation_matrix(p)
        assert not is_permutation_matrix(p * 1j)

    def test_permutation_of_shift(self):
        p = np.array([[0, 0, 1], [1, 0, 0], [0, 1, 0]], dtype=float)
        # column j has its 1 in row (j+1) mod 3
        assert permutation_of(p) == [1, 2, 0]

    def test_permutation_of_rejects_unitary_non_permutation(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        with pytest.raises(ValueError):
            permutation_of(h)


class TestGlobalPhase:
    def test_equal_matrices_match(self):
        m = np.diag([1, 1j])
        assert allclose_up_to_global_phase(m, m)

    def test_phase_multiple_matches(self):
        m = random_unitary(4, np.random.default_rng(0))
        assert allclose_up_to_global_phase(m, np.exp(0.7j) * m)

    def test_different_matrices_do_not_match(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.diag([1, -1]))

    def test_shape_mismatch(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.eye(3))


class TestMatrixRoot:
    def test_square_of_sqrt_x(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        v = matrix_root(x, 0.5)
        assert np.allclose(v @ v, x, atol=1e-9)

    def test_cube_root_composes(self):
        rng = np.random.default_rng(1)
        u = random_unitary(3, rng)
        r = matrix_root(u, 1 / 3)
        assert np.allclose(r @ r @ r, u, atol=1e-8)

    def test_root_is_unitary(self):
        rng = np.random.default_rng(2)
        u = random_unitary(4, rng)
        assert is_unitary(matrix_root(u, 0.25), atol=1e-8)


class TestRandomStates:
    def test_random_state_is_normalised(self):
        v = random_state_vector(100, np.random.default_rng(3))
        assert np.isclose(np.linalg.norm(v), 1.0)

    def test_random_states_differ(self):
        rng = np.random.default_rng(4)
        a = random_state_vector(8, rng)
        b = random_state_vector(8, rng)
        assert not np.allclose(a, b)

    def test_mean_overlap_matches_haar(self):
        # E|<a|b>|^2 = 1/d for independent Haar states.
        rng = np.random.default_rng(5)
        d = 16
        overlaps = [
            fidelity(random_state_vector(d, rng), random_state_vector(d, rng))
            for _ in range(400)
        ]
        assert abs(np.mean(overlaps) - 1 / d) < 3 / d

    def test_random_unitary_is_unitary(self):
        assert is_unitary(random_unitary(6, np.random.default_rng(6)))


class TestMisc:
    def test_kron_all(self):
        x = np.array([[0, 1], [1, 0]])
        out = kron_all(x, np.eye(2))
        assert out.shape == (4, 4)
        assert np.allclose(out, np.kron(x, np.eye(2)))

    def test_fidelity_of_orthogonal_states(self):
        assert fidelity([1, 0], [0, 1]) == 0

    def test_fidelity_shape_mismatch(self):
        with pytest.raises(ValueError):
            fidelity([1, 0], [1, 0, 0])
